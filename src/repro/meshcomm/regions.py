"""Generic mesh-region redistribution.

Generalizes the slab conversions: move data between *any* two sets of
(possibly ghosted, possibly overlapping) rectangular windows onto the
global periodic mesh, with one ``alltoall``.  Used by the pencil-FFT
PM path, whose target layout is a 2-D grid of full-x pencils rather
than 1-D slabs.

Combine semantics:

* ``"add"`` — receivers sum every incoming copy of a cell (density
  assembly from ghosted, overlapping source windows);
* ``"replace"`` — receivers overwrite and verify complete coverage
  (field distribution from a disjoint source layout).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.meshcomm.slab import LocalMeshRegion

__all__ = ["redistribute"]


def _axis_overlaps(
    src_lo: int, src_hi: int, dst_lo: int, dst_hi: int, n: int
) -> List[Tuple[int, int, int]]:
    """Overlaps of two unwrapped intervals under periodic images.

    Yields ``(src_start, src_stop, dst_start)`` in the respective
    unwrapped coordinates: the source cells ``[src_start, src_stop)``
    land on destination cells starting at ``dst_start``.
    """
    out = []
    for t in (-3 * n, -2 * n, -n, 0, n, 2 * n, 3 * n):
        s = max(src_lo, dst_lo + t)
        e = min(src_hi, dst_hi + t)
        if s < e:
            out.append((s, e, s - t))
    return out


def redistribute(
    comm,
    local: Optional[np.ndarray],
    src_region: Optional[LocalMeshRegion],
    dst_region: Optional[LocalMeshRegion],
    combine: str = "add",
) -> Optional[np.ndarray]:
    """Move mesh data from the source layout to the destination layout.

    Every rank passes its own (possibly ``None``) source array/region
    and destination region; regions are allgathered so senders can
    compute overlaps.  Returns the filled destination array (``None``
    for ranks without a destination region).
    """
    if combine not in ("add", "replace"):
        raise ValueError("combine must be 'add' or 'replace'")
    if (local is None) != (src_region is None):
        raise ValueError("local and src_region must be passed together")
    if local is not None and local.shape != src_region.array_shape:
        raise ValueError("local array does not match its region")

    all_dst = comm.allgather(dst_region)

    sends: List[list] = [[] for _ in range(comm.size)]
    if src_region is not None:
        n = src_region.n
        src_ranges = [src_region.unwrapped_range(d) for d in range(3)]
        for rank, dst in enumerate(all_dst):
            if dst is None:
                continue
            per_dim = [
                _axis_overlaps(*src_ranges[d], *dst.unwrapped_range(d), n)
                for d in range(3)
            ]
            if not all(per_dim):
                continue
            for sx in per_dim[0]:
                for sy in per_dim[1]:
                    for sz in per_dim[2]:
                        block = local[
                            sx[0] - src_ranges[0][0] : sx[1] - src_ranges[0][0],
                            sy[0] - src_ranges[1][0] : sy[1] - src_ranges[1][0],
                            sz[0] - src_ranges[2][0] : sz[1] - src_ranges[2][0],
                        ]
                        dst_off = (
                            sx[2] - dst.unwrapped_range(0)[0],
                            sy[2] - dst.unwrapped_range(1)[0],
                            sz[2] - dst.unwrapped_range(2)[0],
                        )
                        sends[rank].append((dst_off, np.ascontiguousarray(block)))

    received = comm.alltoall(sends)

    if dst_region is None:
        return None
    out = dst_region.allocate()
    filled = np.zeros(dst_region.array_shape, dtype=bool) if combine == "replace" else None
    for messages in received:
        for (ox, oy, oz), block in messages:
            sl = (
                slice(ox, ox + block.shape[0]),
                slice(oy, oy + block.shape[1]),
                slice(oz, oz + block.shape[2]),
            )
            if combine == "add":
                out[sl] += block
            else:
                out[sl] = block
                filled[sl] = True
    if combine == "replace" and not filled.all():
        raise RuntimeError("redistribute: destination not fully covered")
    return out
