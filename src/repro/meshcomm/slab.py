"""Mesh-region bookkeeping for the two PM domain decompositions.

``LocalMeshRegion`` describes the rectangular (plus ghost layers) piece
of the global mesh a process owns under the 3-D particle decomposition;
``SlabDecomposition`` describes the 1-D x-slab layout required by the
parallel FFT (paper Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["LocalMeshRegion", "SlabDecomposition"]


@dataclass(frozen=True)
class LocalMeshRegion:
    """A process's local window onto the global ``n^3`` mesh.

    Attributes
    ----------
    n:
        Global mesh points per dimension.
    lo:
        Global (unwrapped) cell index of the first *interior* cell per
        dimension.
    shape:
        Interior cell counts per dimension.
    ghost:
        Ghost-layer width on every face; the local array has shape
        ``shape + 2 * ghost``.  Array index ``i`` along dimension d maps
        to unwrapped global cell ``lo[d] - ghost + i`` (wrap modulo n
        for the physical cell).
    """

    n: int
    lo: Tuple[int, int, int]
    shape: Tuple[int, int, int]
    ghost: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be positive")
        if self.ghost < 0:
            raise ValueError("ghost must be >= 0")
        if any(s < 1 for s in self.shape):
            raise ValueError("region shape must be positive")
        if any(s + 2 * self.ghost > 3 * self.n for s in self.shape):
            raise ValueError(
                "region extent may not exceed three box lengths (the "
                "periodic-image bookkeeping covers shifts of +-3n only)"
            )

    @property
    def array_shape(self) -> Tuple[int, int, int]:
        g2 = 2 * self.ghost
        return (self.shape[0] + g2, self.shape[1] + g2, self.shape[2] + g2)

    def allocate(self) -> np.ndarray:
        return np.zeros(self.array_shape)

    def unwrapped_range(self, dim: int) -> Tuple[int, int]:
        """[start, stop) of the local array along ``dim`` in unwrapped
        global cell coordinates (ghosts included)."""
        return (self.lo[dim] - self.ghost, self.lo[dim] + self.shape[dim] + self.ghost)

    def wrapped_indices(self, dim: int) -> np.ndarray:
        """Physical (wrapped) global cell index of every local array
        plane along ``dim``."""
        a, b = self.unwrapped_range(dim)
        return np.arange(a, b) % self.n

    def interior(self, arr: np.ndarray) -> np.ndarray:
        """View of the interior (ghost-free) part of a local array."""
        g = self.ghost
        if g == 0:
            return arr
        return arr[g:-g, g:-g, g:-g]

    @staticmethod
    def from_domain(
        n: int, dom_lo: np.ndarray, dom_hi: np.ndarray, box: float, ghost: int
    ) -> "LocalMeshRegion":
        """Region of mesh cells whose assignment window can receive mass
        from particles in the spatial domain ``[dom_lo, dom_hi)``.

        A TSC particle at position x touches grid points within 1.5
        cells of x, i.e. cells ``round(x/h) +- 1``; the interior is the
        cell range [floor(lo/h + 0.5) - 1, floor(hi/h + 0.5) + 1].
        """
        h = box / n
        lo_cells = np.floor(np.asarray(dom_lo) / h + 0.5).astype(int) - 1
        hi_cells = np.floor(np.asarray(dom_hi) / h + 0.5).astype(int) + 2
        # a full-axis domain yields n + 3 cells: the region may exceed n
        # (cells then alias periodically; the conversions sum aliases)
        shape = hi_cells - lo_cells
        return LocalMeshRegion(
            n=n,
            lo=tuple(int(v) for v in lo_cells),
            shape=tuple(int(v) for v in shape),
            ghost=ghost,
        )


class SlabDecomposition:
    """Even 1-D split of the global mesh's x axis over FFT processes.

    Parameters
    ----------
    n:
        Global mesh points per dimension.
    n_slabs:
        Number of FFT processes; at most ``n`` (the paper's constraint:
        "the number of processes that perform FFT is limited by the
        number of grid points of the PM part in one dimension").
    """

    def __init__(self, n: int, n_slabs: int) -> None:
        if n < 1:
            raise ValueError("n must be positive")
        if not 1 <= n_slabs <= n:
            raise ValueError(
                f"n_slabs must be in [1, {n}] (1-D slab FFT limit), got {n_slabs}"
            )
        self.n = int(n)
        self.n_slabs = int(n_slabs)
        base, extra = divmod(self.n, self.n_slabs)
        counts = [base + (1 if i < extra else 0) for i in range(self.n_slabs)]
        starts = np.concatenate([[0], np.cumsum(counts)])
        self._ranges: List[Tuple[int, int]] = [
            (int(starts[i]), int(starts[i + 1])) for i in range(self.n_slabs)
        ]

    def range_of(self, slab: int) -> Tuple[int, int]:
        """[start, stop) of x-planes owned by FFT process ``slab``."""
        return self._ranges[slab]

    def owner_of(self, x: int) -> int:
        """FFT process owning (wrapped) x-plane ``x``."""
        x = x % self.n
        for i, (a, b) in enumerate(self._ranges):
            if a <= x < b:
                return i
        raise AssertionError("unreachable")  # pragma: no cover

    def shape_of(self, slab: int) -> Tuple[int, int, int]:
        a, b = self._ranges[slab]
        return (b - a, self.n, self.n)

    def allocate(self, slab: int) -> np.ndarray:
        return np.zeros(self.shape_of(slab))

    def __len__(self) -> int:
        return self.n_slabs
