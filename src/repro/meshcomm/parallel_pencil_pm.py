"""Distributed PM with the pencil-decomposed FFT (future-work path).

The drop-in alternative to :class:`repro.meshcomm.parallel_pm.ParallelPM`
for the paper's stated next step: because pencils admit up to ``n^2``
FFT processes, the PM long-range solve keeps scaling past the 1-D slab
cap that froze Table I's FFT row.  The mesh conversions use the generic
region redistribution (3-D local windows <-> 2-D pencil grid).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.mesh.assignment import assign_mass_local, interpolate_local
from repro.mesh.differentiate import gradient_block
from repro.mesh.greens import build_greens_function
from repro.meshcomm.parallel_pm import DENSITY_GHOST, POTENTIAL_GHOST
from repro.meshcomm.pencil_fft import PencilFFT
from repro.meshcomm.regions import redistribute
from repro.meshcomm.slab import LocalMeshRegion
from repro.utils.timer import TimingLedger

__all__ = ["ParallelPencilPM"]


class ParallelPencilPM:
    """Long-range solver over a 2-D pencil FFT grid.

    Parameters
    ----------
    comm:
        World communicator.
    n:
        Global PM mesh size.
    grid:
        Pencil process grid ``(py, pz)``; ``py * pz`` ranks (a prefix
        of the communicator) perform the FFT.  Unlike the slab path,
        ``py * pz`` may exceed ``n`` (up to ``n^2``).
    """

    def __init__(
        self,
        comm,
        n: int,
        box: float = 1.0,
        split=None,
        G: float = 1.0,
        grid: Optional[Tuple[int, int]] = None,
        assignment: str = "tsc",
        deconvolve: Optional[int] = None,
        differencing: str = "four_point",
    ) -> None:
        self.comm = comm
        self.n = int(n)
        self.box = float(box)
        self.split = split
        self.G = float(G)
        self.assignment = assignment
        self.differencing = differencing
        if deconvolve is None:
            deconvolve = 2 if split is not None else 1
        if grid is None:
            py = int(np.floor(np.sqrt(comm.size)))
            while comm.size % py:
                py -= 1
            grid = (py, comm.size // py)
        py, pz = grid
        if py * pz > comm.size:
            raise ValueError("pencil grid larger than the communicator")
        if py > n or pz > n:
            raise ValueError("grid dimensions cannot exceed the mesh size")
        self.grid = (int(py), int(pz))

        in_grid = comm.rank < py * pz
        self.comm_fft = comm.split(color=0 if in_grid else None)
        self.is_fft_rank = in_grid
        if in_grid:
            self.fft = PencilFFT(self.comm_fft, self.n, self.grid)
            greens_full = build_greens_function(
                self.n,
                box=self.box,
                split=split,
                G=G,
                assignment=assignment,
                deconvolve=deconvolve,
                rfft=False,
            )
            self.greens_pencil = self.fft.greens_slice(greens_full)
            (xa, xb), (ya, yb), (za, zb) = self.fft.real_ranges()
            self.pencil_region = LocalMeshRegion(
                n=self.n,
                lo=(xa, ya, za),
                shape=(xb - xa, yb - ya, zb - za),
                ghost=0,
            )
        else:
            self.fft = None
            self.greens_pencil = None
            self.pencil_region = None

    # -- regions ---------------------------------------------------------------

    def density_region(self, dom_lo, dom_hi) -> LocalMeshRegion:
        return LocalMeshRegion.from_domain(
            self.n, dom_lo, dom_hi, self.box, DENSITY_GHOST
        )

    def potential_region(self, dom_lo, dom_hi) -> LocalMeshRegion:
        return LocalMeshRegion.from_domain(
            self.n, dom_lo, dom_hi, self.box, POTENTIAL_GHOST
        )

    # -- the PM cycle -----------------------------------------------------------

    def forces(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        dom_lo,
        dom_hi,
        timing: Optional[TimingLedger] = None,
        validator=None,
    ) -> np.ndarray:
        """Long-range accelerations for this rank's particles.

        ``validator`` enables mass-conservation and finite-field checks
        (collective: every rank must pass the same validator or none).
        """
        timing = timing if timing is not None else TimingLedger()
        rho_region = self.density_region(dom_lo, dom_hi)
        pot_region = self.potential_region(dom_lo, dom_hi)
        cell_vol = (self.box / self.n) ** 3

        pos = np.asarray(pos, dtype=np.float64)
        center = 0.5 * (np.asarray(dom_lo) + np.asarray(dom_hi))
        pos = pos - self.box * np.round((pos - center) / self.box)

        with timing.phase("PM/density assignment"):
            local_rho = (
                assign_mass_local(pos, mass, rho_region, self.box, self.assignment)
                / cell_vol
            )

        check_mass = validator is not None and validator.check_enabled(
            "mass_conservation"
        )
        if check_mass:
            from repro.validate.checks import check_mesh_mass

            totals = self.comm.allreduce(
                np.array([local_rho.sum() * cell_vol, mass.sum()]), op="sum"
            )
            validator.handle(
                check_mesh_mass(
                    float(totals[0]),
                    float(totals[1]),
                    stage="mesh/assignment",
                    step=validator.step,
                    rank=self.comm.rank,
                )
            )

        self.comm.traffic_phase("pm:mesh_to_pencil")
        with timing.phase("PM/communication"):
            pencil_rho = redistribute(
                self.comm, local_rho, rho_region, self.pencil_region, combine="add"
            )
        if check_mass:
            pencil_sum = (
                float(pencil_rho.sum()) * cell_vol if self.is_fft_rank else 0.0
            )
            totals = self.comm.allreduce(
                np.array([pencil_sum, mass.sum()]), op="sum"
            )
            validator.handle(
                check_mesh_mass(
                    float(totals[0]),
                    float(totals[1]),
                    stage="meshcomm/convert",
                    step=validator.step,
                    rank=self.comm.rank,
                )
            )

        self.comm.traffic_phase("pm:fft")
        with timing.phase("PM/FFT"):
            pencil_phi = None
            if self.is_fft_rank:
                pencil_phi = self.fft.convolve(
                    pencil_rho.astype(complex), self.greens_pencil
                )
            self.comm.barrier()

        self.comm.traffic_phase("pm:pencil_to_mesh")
        with timing.phase("PM/communication"):
            local_phi = redistribute(
                self.comm,
                pencil_phi,
                self.pencil_region if self.is_fft_rank else None,
                pot_region,
                combine="replace",
            )
        self.comm.traffic_phase("pm:done")

        with timing.phase("PM/acceleration on mesh"):
            grad = gradient_block(
                local_phi, self.box / self.n, scheme=self.differencing, trim=2
            )

        with timing.phase("PM/force interpolation"):
            acc = -interpolate_local(
                grad, pos, pot_region, self.box, self.assignment, trim=2
            )
        if validator is not None and validator.check_enabled("finite_fields"):
            from repro.validate.checks import check_finite

            validator.handle_collective(
                self.comm,
                check_finite(
                    "pm_acc", acc, stage="treepm/pm",
                    step=validator.step, rank=self.comm.rank,
                ),
            )
        return acc
