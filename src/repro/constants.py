"""Physical and numerical constants used throughout the framework.

The simulation works in dimensionless "box units" internally (the side
length of the periodic box is 1, the total mass of the box is 1 and
``G = 1`` unless stated otherwise); this module provides the conversion
constants used when translating to/from physical units in the cosmology
and analysis layers.
"""

from __future__ import annotations

import math

# -- fundamental constants (SI) ------------------------------------------
GRAVITATIONAL_CONSTANT_SI = 6.674_30e-11  # m^3 kg^-1 s^-2
SPEED_OF_LIGHT_SI = 2.997_924_58e8  # m s^-1
PARSEC_SI = 3.085_677_581_49e16  # m
SOLAR_MASS_SI = 1.988_92e30  # kg
YEAR_SI = 3.155_76e7  # s (Julian year)

# -- astrophysical composites ---------------------------------------------
MEGAPARSEC_SI = PARSEC_SI * 1.0e6
KILOMETER_SI = 1.0e3

#: Gravitational constant in (Mpc, M_sun, km/s) units:
#: G [Mpc (km/s)^2 / M_sun]
G_MPC_MSUN_KMS = (
    GRAVITATIONAL_CONSTANT_SI * SOLAR_MASS_SI / MEGAPARSEC_SI / KILOMETER_SI**2
)

#: Hubble constant of 100 km/s/Mpc expressed in 1/s.
H100_SI = 100.0 * KILOMETER_SI / MEGAPARSEC_SI

#: Critical density of the universe for H0 = 100 h km/s/Mpc, in
#: M_sun / Mpc^3 (multiply by h^2 for a given h).
RHO_CRIT_H2_MSUN_MPC3 = 3.0 * H100_SI**2 / (8.0 * math.pi * GRAVITATIONAL_CONSTANT_SI) * (
    MEGAPARSEC_SI**3 / SOLAR_MASS_SI
)

# -- paper-specific machine constants (K computer, SPARC64 VIIIfx) --------
#: Clock speed of a K computer core (Hz).
K_CLOCK_HZ = 2.0e9
#: FMA units per core.
K_FMA_UNITS = 4
#: Cores per node.
K_CORES_PER_NODE = 8
#: LINPACK peak per core in flop/s (4 FMA units x 2 flops x 2 GHz).
K_PEAK_PER_CORE = K_FMA_UNITS * 2 * K_CLOCK_HZ
#: Peak per node in flop/s.
K_PEAK_PER_NODE = K_PEAK_PER_CORE * K_CORES_PER_NODE
#: Number of nodes in the full K computer system.
K_FULL_SYSTEM_NODES = 82944
#: Number of nodes in the partial (~30%) configuration used by the paper.
K_PARTIAL_SYSTEM_NODES = 24576

#: Operation count per particle-particle interaction adopted by the paper
#: ("we use the operation count of 51 per interaction").
FLOPS_PER_INTERACTION = 51

#: The paper's force loop issues 17 FMA + 17 non-FMA operations per SIMD
#: iteration (two interactions), so its per-core ceiling is
#: 51 * 2 / 34 cycles * 2 GHz = 12 Gflops; see :mod:`repro.perf.kcomputer`.
KERNEL_FMA_OPS = 17
KERNEL_NON_FMA_OPS = 17

__all__ = [name for name in dir() if name.isupper()]
