"""Run-configuration dataclasses.

Every top-level component of the framework is configured through one of
the frozen dataclasses defined here.  They validate their fields eagerly
so that a mis-configured simulation fails at construction time rather
than deep inside a force loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Tuple


def _check_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def _check_power_of_two(name: str, value: int) -> None:
    if value < 1 or value & (value - 1):
        raise ValueError(f"{name} must be a power of two, got {value!r}")


@dataclass(frozen=True)
class TreeConfig:
    """Parameters of the Barnes-Hut tree used for the short-range part.

    Attributes
    ----------
    opening_angle:
        Multipole acceptance criterion theta.  A node of size ``s`` at
        distance ``d`` is accepted when ``s < opening_angle * d``.
    leaf_size:
        Maximum number of particles in a leaf cell.
    group_size:
        Target number of particles per traversal group ``<Ni>`` for
        Barnes' modified algorithm (the paper finds ~100 optimal on K).
    use_quadrupole:
        Whether node moments include the quadrupole term.
    use_plan:
        Evaluate short-range forces through the flat interaction-plan
        engine (traverse all groups first, then execute one batched
        sweep).  ``False`` selects the legacy interleaved per-group
        path; in double precision both give bitwise-identical forces.
    plan_float32:
        Run the plan executor's pair arithmetic in single precision
        (the paper's float32 Phantom-GRAPE kernel).  Plan mode only.
    """

    opening_angle: float = 0.5
    leaf_size: int = 8
    group_size: int = 64
    use_quadrupole: bool = False
    use_plan: bool = True
    plan_float32: bool = False

    def __post_init__(self) -> None:
        _check_positive("opening_angle", self.opening_angle)
        if self.opening_angle >= 2.0:
            raise ValueError("opening_angle >= 2 gives divergent force errors")
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")


@dataclass(frozen=True)
class PMConfig:
    """Parameters of the particle-mesh (long-range) solver.

    Attributes
    ----------
    mesh_size:
        Number of PM grid points per dimension (``N_PM^(1/3)``).
    assignment:
        Mass-assignment scheme: ``"ngp"``, ``"cic"`` or ``"tsc"``
        (the paper uses TSC, a 27-point kernel).
    deconvolve:
        Whether to deconvolve the assignment window (applied twice:
        once for assignment, once for interpolation).
    differencing:
        Gradient scheme on the mesh: ``"four_point"`` (the paper) or
        ``"two_point"`` or ``"spectral"``.
    fft_backend:
        Distributed FFT layout: ``"slab"`` (the paper's 1-D FFTW-style
        decomposition, limited to ``mesh_size`` processes) or
        ``"pencil"`` (the 2-D decomposition of the paper's future-work
        section, scaling to ``mesh_size^2``).
    """

    mesh_size: int = 64
    assignment: str = "tsc"
    deconvolve: bool = True
    differencing: str = "four_point"
    fft_backend: str = "slab"

    _ASSIGNMENTS = ("ngp", "cic", "tsc")
    _DIFFERENCING = ("two_point", "four_point", "spectral")
    _FFT_BACKENDS = ("slab", "pencil")

    def __post_init__(self) -> None:
        if self.mesh_size < 4:
            raise ValueError("mesh_size must be >= 4")
        if self.assignment not in self._ASSIGNMENTS:
            raise ValueError(
                f"assignment must be one of {self._ASSIGNMENTS}, got {self.assignment!r}"
            )
        if self.differencing not in self._DIFFERENCING:
            raise ValueError(
                f"differencing must be one of {self._DIFFERENCING}, "
                f"got {self.differencing!r}"
            )
        if self.fft_backend not in self._FFT_BACKENDS:
            raise ValueError(
                f"fft_backend must be one of {self._FFT_BACKENDS}, "
                f"got {self.fft_backend!r}"
            )


@dataclass(frozen=True)
class TreePMConfig:
    """Parameters of the combined TreePM force solver.

    Attributes
    ----------
    tree:
        Short-range tree configuration.
    pm:
        Long-range PM configuration.
    rcut_mesh_units:
        Cutoff radius of the short-range force in units of the PM mesh
        spacing.  The paper uses ``rcut = 3 / N_PM^(1/3)``, i.e. 3.
    softening:
        Plummer softening length epsilon in box units (must be << rcut).
    split:
        Force-splitting shape: ``"s2"`` (P3M / the paper) or
        ``"gaussian"`` (GADGET-style baseline).
    """

    tree: TreeConfig = field(default_factory=TreeConfig)
    pm: PMConfig = field(default_factory=PMConfig)
    rcut_mesh_units: float = 3.0
    softening: float = 1.0e-4
    split: str = "s2"

    _SPLITS = ("s2", "gaussian")

    def __post_init__(self) -> None:
        _check_positive("rcut_mesh_units", self.rcut_mesh_units)
        _check_positive("softening", self.softening)
        if self.split not in self._SPLITS:
            raise ValueError(f"split must be one of {self._SPLITS}, got {self.split!r}")
        if self.softening >= self.rcut:
            raise ValueError(
                f"softening ({self.softening}) must be much smaller than "
                f"rcut ({self.rcut})"
            )

    @property
    def rcut(self) -> float:
        """Cutoff radius in box units."""
        return self.rcut_mesh_units / self.pm.mesh_size


@dataclass(frozen=True)
class DomainConfig:
    """Parameters of the dynamic 3-D multisection domain decomposition.

    Attributes
    ----------
    divisions:
        Number of domains along each axis; ``prod(divisions)`` must
        equal the number of MPI processes.
    sample_rate:
        Baseline fraction of particles sampled by the sampling method.
    smoothing_window:
        Number of past steps entering the linear weighted moving
        average of domain boundaries (the paper uses 5).
    cost_balance:
        If true, the per-domain sampling rate is scaled by the measured
        force-calculation cost (the paper's load balancing); if false
        the decomposition balances raw particle counts.
    """

    divisions: Tuple[int, int, int] = (2, 2, 2)
    sample_rate: float = 0.05
    smoothing_window: int = 5
    cost_balance: bool = True

    def __post_init__(self) -> None:
        if len(self.divisions) != 3 or any(d < 1 for d in self.divisions):
            raise ValueError(f"divisions must be three integers >= 1, got {self.divisions!r}")
        if not 0.0 < self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        if self.smoothing_window < 1:
            raise ValueError("smoothing_window must be >= 1")

    @property
    def n_domains(self) -> int:
        return self.divisions[0] * self.divisions[1] * self.divisions[2]


@dataclass(frozen=True)
class RelayMeshConfig:
    """Parameters of the relay mesh communication algorithm.

    Attributes
    ----------
    n_groups:
        Number of relay groups the processes are divided into.  One
        group (the *root group*) contains the FFT processes.  With
        ``n_groups = 1`` the method degenerates to the straightforward
        global all-to-all conversion.
    """

    n_groups: int = 1

    def __post_init__(self) -> None:
        if self.n_groups < 1:
            raise ValueError("n_groups must be >= 1")


@dataclass(frozen=True)
class ValidationConfig:
    """Policy of the runtime invariant guardrails (``repro.validate``).

    Attributes
    ----------
    policy:
        What happens when a check fires: ``"off"`` (checks are never
        evaluated), ``"warn"`` (emit an ``InvariantWarning`` and keep
        running), ``"abort"`` (raise the ``InvariantViolation``) or
        ``"dump"`` (write a diagnostic checkpoint first, then raise —
        so the violation is reproducible offline).
    interval:
        Sampling interval: checks run every this many steps, so
        ``warn`` stays cheap enough to leave on.
    energy_tol:
        Relative total-energy drift tolerance of the per-step monitor.
        Loose by default: cosmological energy is not strictly conserved,
        so the monitor targets integrator blow-ups, not secular drift.
    energy_interval:
        Evaluate the energy monitor every this many steps; ``0``
        disables it (the total potential is an O(N^2) diagnostic).
    momentum_tol:
        Relative total-momentum drift tolerance (against the largest
        momentum scale seen so far).
    dump_dir:
        Directory for ``dump``-policy diagnostic checkpoints
        (default: ``"diagnostics"`` under the working directory).
    strict_load:
        Run a finite-field sweep over particle arrays when restoring
        any checkpoint, rejecting values corrupted in storage even when
        checksums were regenerated around them.
    overrides:
        Per-check policy overrides, e.g. ``{"energy_drift": "warn"}``;
        keys are checker names (see ``docs/validation.md``).
    """

    policy: str = "off"
    interval: int = 1
    energy_tol: float = 0.25
    energy_interval: int = 0
    momentum_tol: float = 0.25
    dump_dir: Optional[str] = None
    strict_load: bool = False
    overrides: Mapping[str, str] = field(default_factory=dict)

    _POLICIES = ("off", "warn", "abort", "dump")

    def __post_init__(self) -> None:
        if self.policy not in self._POLICIES:
            raise ValueError(
                f"policy must be one of {self._POLICIES}, got {self.policy!r}"
            )
        if self.interval < 1:
            raise ValueError("interval must be >= 1")
        if self.energy_interval < 0:
            raise ValueError("energy_interval must be >= 0")
        _check_positive("energy_tol", self.energy_tol)
        _check_positive("momentum_tol", self.momentum_tol)
        for check, policy in dict(self.overrides).items():
            if policy not in self._POLICIES:
                raise ValueError(
                    f"override for {check!r} must be one of "
                    f"{self._POLICIES}, got {policy!r}"
                )
        # normalize to a private dict copy (value semantics; asdict-safe)
        object.__setattr__(self, "overrides", dict(self.overrides))

    @property
    def enabled(self) -> bool:
        return self.policy != "off" or any(
            p != "off" for p in self.overrides.values()
        )


@dataclass(frozen=True)
class SdcConfig:
    """Policy of the silent-data-corruption (SDC) audit layer.

    Attributes
    ----------
    policy:
        What happens when an audit finds corruption: ``"off"`` (audits
        never run), ``"warn"`` (record and log the ``SdcEvent``, keep
        running with the corrupted data), ``"heal"`` (restore damaged
        blocks in place from the checksum-clean replica, or roll back
        to the last verified boundary when in-place healing is not
        possible; raise only when nothing clean survives) or
        ``"abort"`` (raise ``SdcViolation`` on first detection).
    audit_every:
        Run the audit battery every this many steps.
    spot_check_groups:
        Number of interaction-plan groups re-swept through the pure
        python reference kernel per audit (ABFT force spot-check);
        ``0`` disables the spot-check.
    keep_last:
        Checkpoint retention depth: after every durable checkpoint,
        prune all but the newest ``keep_last`` epochs.  ``0`` keeps
        everything.
    seed:
        Seed of the deterministic spot-check sampler (mixed with the
        step index and rank so every audit draws fresh groups).
    """

    policy: str = "off"
    audit_every: int = 1
    spot_check_groups: int = 4
    keep_last: int = 0
    seed: int = 2012

    _POLICIES = ("off", "warn", "heal", "abort")

    def __post_init__(self) -> None:
        if self.policy not in self._POLICIES:
            raise ValueError(
                f"policy must be one of {self._POLICIES}, got {self.policy!r}"
            )
        if self.audit_every < 1:
            raise ValueError("audit_every must be >= 1")
        if self.spot_check_groups < 0:
            raise ValueError("spot_check_groups must be >= 0")
        if self.keep_last < 0:
            raise ValueError("keep_last must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.policy != "off"


@dataclass(frozen=True)
class HealthConfig:
    """Policy of the gray-failure health layer (``repro.mpi.health``).

    Attributes
    ----------
    policy:
        What happens when a rank is confirmed a straggler: ``"off"``
        (health monitoring never runs), ``"monitor"`` (score and log
        ``HealthEvent``\\ s, take no action), ``"evict"`` (cooperative
        drain — flush the buddy replica, then voluntary shrink through
        the elastic re-decomposition path) or ``"degrade"`` (keep the
        straggler but shed load: stretch audit/checkpoint cadence
        within the declared bounds and widen collective deadlines).
    straggler_factor:
        A rank is suspect when its step time exceeds the robust fleet
        median by this factor.
    straggler_patience:
        Consecutive over-threshold steps before a suspect becomes a
        confirmed straggler (debounces one-off hiccups such as a GC
        pause or page-cache miss).
    min_samples:
        Step-time samples required before verdicts are issued (the
        first steps include warm-up noise such as JIT/native compile).
    audit_stretch_max:
        Upper bound on the degradation engine's audit/checkpoint
        cadence multiplier — the declared bound that keeps "stretch
        the audit cadence" from becoming "silently disable audits".
    deadline_quantile:
        Quantile of the observed step-time distribution that seeds the
        adaptive collective deadline.
    deadline_factor:
        Multiplier applied to the quantile to get the deadline.
    deadline_floor / deadline_ceil:
        Clamp bounds (seconds) of the adaptive deadline.
    """

    policy: str = "off"
    straggler_factor: float = 3.0
    straggler_patience: int = 3
    min_samples: int = 3
    audit_stretch_max: int = 4
    deadline_quantile: float = 0.9
    deadline_factor: float = 10.0
    deadline_floor: float = 1.0
    deadline_ceil: float = 120.0

    _POLICIES = ("off", "monitor", "evict", "degrade")

    def __post_init__(self) -> None:
        if self.policy not in self._POLICIES:
            raise ValueError(
                f"policy must be one of {self._POLICIES}, got {self.policy!r}"
            )
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.straggler_patience < 1:
            raise ValueError("straggler_patience must be >= 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.audit_stretch_max < 1:
            raise ValueError("audit_stretch_max must be >= 1")
        if not 0.0 < self.deadline_quantile <= 1.0:
            raise ValueError("deadline_quantile must be in (0, 1]")
        _check_positive("deadline_factor", self.deadline_factor)
        _check_positive("deadline_floor", self.deadline_floor)
        if self.deadline_ceil < self.deadline_floor:
            raise ValueError("deadline_ceil must be >= deadline_floor")

    @property
    def enabled(self) -> bool:
        return self.policy != "off"


@dataclass(frozen=True)
class MachineConfig:
    """Analytic machine model for performance projection.

    Default values describe one node of the K computer as reported in
    the paper (SPARC64 VIIIfx: 8 cores at 2 GHz with 4 FMA units).

    Attributes
    ----------
    nodes:
        Number of nodes.
    cores_per_node:
        Cores per node.
    clock_hz:
        Core clock in Hz.
    fma_units:
        FMA pipelines per core.
    link_bandwidth:
        Point-to-point link bandwidth of the interconnect in bytes/s
        (Tofu: 5 GB/s per link per direction).
    link_latency:
        Per-message latency in seconds.
    torus_shape:
        Logical 3-D torus shape used by the network congestion model;
        ``prod(torus_shape)`` must equal ``nodes``.
    """

    nodes: int = 82944
    cores_per_node: int = 8
    clock_hz: float = 2.0e9
    fma_units: int = 4
    link_bandwidth: float = 5.0e9
    link_latency: float = 1.0e-6
    torus_shape: Tuple[int, int, int] = (32, 54, 48)

    def __post_init__(self) -> None:
        _check_positive("nodes", self.nodes)
        _check_positive("cores_per_node", self.cores_per_node)
        _check_positive("clock_hz", self.clock_hz)
        _check_positive("fma_units", self.fma_units)
        _check_positive("link_bandwidth", self.link_bandwidth)
        _check_positive("link_latency", self.link_latency)
        if math.prod(self.torus_shape) != self.nodes:
            raise ValueError(
                f"prod(torus_shape)={math.prod(self.torus_shape)} must equal "
                f"nodes={self.nodes}"
            )

    @property
    def peak_per_core(self) -> float:
        """LINPACK peak flop/s per core (FMA units x 2 flops x clock)."""
        return self.fma_units * 2.0 * self.clock_hz

    @property
    def peak_per_node(self) -> float:
        return self.peak_per_core * self.cores_per_node

    @property
    def peak_total(self) -> float:
        return self.peak_per_node * self.nodes


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level configuration of a parallel TreePM simulation."""

    n_particles: int = 4096
    treepm: TreePMConfig = field(default_factory=TreePMConfig)
    domain: DomainConfig = field(default_factory=DomainConfig)
    relay: RelayMeshConfig = field(default_factory=RelayMeshConfig)
    #: Runtime invariant guardrails (``repro.validate``); diagnostics
    #: only — never part of the physics fingerprint.
    validation: ValidationConfig = field(default_factory=ValidationConfig)
    #: Silent-data-corruption audits (``repro.validate.sdc``); like
    #: ``validation``, diagnostics only — never part of the physics
    #: fingerprint.
    sdc: SdcConfig = field(default_factory=SdcConfig)
    #: Gray-failure health layer (``repro.mpi.health``); operational
    #: policy only — never part of the physics fingerprint.
    health: HealthConfig = field(default_factory=HealthConfig)
    #: Number of PP + domain-decomposition sub-cycles per PM step
    #: (the paper: "one simulation step was composed by a cycle of the
    #: PM and two cycles of the PP and the domain decomposition").
    pp_subcycles: int = 2
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.n_particles < 1:
            raise ValueError("n_particles must be >= 1")
        if self.pp_subcycles < 1:
            raise ValueError("pp_subcycles must be >= 1")

    def with_(self, **kwargs) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """JSON-serializable representation (checkpoints, CLI)."""
        from dataclasses import asdict

        return asdict(self)

    def config_hash(self, include_layout: bool = True) -> str:
        """sha256 fingerprint of this configuration.

        Checkpoint manifests store the hash with
        ``include_layout=False``, which excludes the ``domain`` and
        ``relay`` fields: those describe the process layout rather than
        the physics, and a checkpoint may legitimately be resumed on a
        different rank count.  The ``validation`` policy is always
        excluded: guardrails are diagnostics, and a checkpoint written
        with validation off must be loadable with validation on (that is
        how a diagnostic dump is replayed).
        """
        import hashlib
        import json

        d = self.to_dict()
        d.pop("validation", None)
        d.pop("sdc", None)
        d.pop("health", None)
        if not include_layout:
            d.pop("domain", None)
            d.pop("relay", None)
        return hashlib.sha256(
            json.dumps(d, sort_keys=True, default=str).encode()
        ).hexdigest()

    @staticmethod
    def from_dict(data: dict) -> "SimulationConfig":
        """Inverse of :meth:`to_dict`; validates on construction."""
        d = dict(data)
        tp = dict(d.pop("treepm", {}))
        tree = TreeConfig(**tp.pop("tree", {}))
        pm = PMConfig(**tp.pop("pm", {}))
        treepm = TreePMConfig(tree=tree, pm=pm, **tp)
        domain = d.pop("domain", {})
        if isinstance(domain, dict):
            if "divisions" in domain:
                domain = {**domain, "divisions": tuple(domain["divisions"])}
            domain = DomainConfig(**domain)
        relay = d.pop("relay", {})
        if isinstance(relay, dict):
            relay = RelayMeshConfig(**relay)
        validation = d.pop("validation", {})
        if isinstance(validation, dict):
            validation = ValidationConfig(**validation)
        sdc = d.pop("sdc", {})
        if isinstance(sdc, dict):
            sdc = SdcConfig(**sdc)
        health = d.pop("health", {})
        if isinstance(health, dict):
            health = HealthConfig(**health)
        return SimulationConfig(
            treepm=treepm,
            domain=domain,
            relay=relay,
            validation=validation,
            sdc=sdc,
            health=health,
            **d,
        )


__all__ = [
    "TreeConfig",
    "PMConfig",
    "TreePMConfig",
    "DomainConfig",
    "RelayMeshConfig",
    "MachineConfig",
    "ValidationConfig",
    "SdcConfig",
    "HealthConfig",
    "SimulationConfig",
]
