"""Leapfrog integrators: plain KDK and the two-level TreePM hierarchy.

:class:`TwoLevelKDK` implements the paper's step: the long-range (PM)
force is applied in half-kicks bracketing the step, while the
short-range (PP) force runs ``n_sub`` (= 2 in the paper) inner KDK
cycles.  Forces are supplied by callables so both the serial TreePM
solver and the distributed simulation driver can reuse the scheme:

    K_PM(H/2) [ K_PP(h/2) D(h) K_PP(h/2) ] x n_sub  K_PM(H/2)

Both integrators are symplectic for fixed coefficients and second-order
accurate.

The particle state is copied once at step entry and then updated in
place — through the fused native kick-drift-wrap kernel when available
(:mod:`repro.native.update`), else with the identical in-place numpy
arithmetic.  Either way the element values match the historical
``mom + acc * c`` / ``wrap_positions(pos + mom * dc)`` expressions bit
for bit, and the returned arrays are new (inputs are never modified).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.native import update as _native_update
from repro.utils.periodic import wrap_positions

__all__ = ["LeapfrogIntegrator", "TwoLevelKDK"]

ForceFn = Callable[[np.ndarray], np.ndarray]

#: TimingLedger phase for the update arithmetic, alongside the PM/PP
#: force phases ("Update" is the paper's position/velocity update row).
UPDATE_PHASE = "Update/kick-drift"


def _kick_inplace(mom: np.ndarray, acc: np.ndarray, coeff: float) -> None:
    """``mom += acc * coeff`` (native kernel or identical numpy ops)."""
    if not _native_update.kick(mom, acc, coeff):
        np.add(mom, acc * coeff, out=mom)


def _kick_drift_wrap_inplace(
    pos: np.ndarray,
    mom: np.ndarray,
    acc: np.ndarray,
    kick_coeff: float,
    drift_coeff: float,
    box: float,
) -> None:
    """Fused kick + drift + periodic wrap, in place on ``pos``/``mom``."""
    if _native_update.kick_drift_wrap(pos, mom, acc, kick_coeff, drift_coeff, box):
        return
    np.add(mom, acc * kick_coeff, out=mom)
    np.add(pos, mom * drift_coeff, out=pos)
    np.mod(pos, box, out=pos)
    # np.mod can return exactly `box` for tiny negative inputs due to
    # rounding; fold those onto 0 (same rule as wrap_positions)
    pos[pos >= box] = 0.0


class LeapfrogIntegrator:
    """Single-level kick-drift-kick with one force callable.

    ``ledger`` (optional) receives the update arithmetic under the
    ``Update/kick-drift`` phase so the per-step accounting stays
    complete alongside the force phases.
    """

    def __init__(self, force: ForceFn, stepper, box: float = 1.0, ledger=None) -> None:
        self.force = force
        self.stepper = stepper
        self.box = float(box)
        self.ledger = ledger
        self._cached_force: Optional[np.ndarray] = None

    def _phase(self):
        if self.ledger is None:
            return _NULL_PHASE
        return self.ledger.phase(UPDATE_PHASE)

    def step(
        self, pos: np.ndarray, mom: np.ndarray, t1: float, t2: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance (pos, mom) from t1 to t2; returns new arrays."""
        st = self.stepper
        tm = 0.5 * (t1 + t2)
        g = self._cached_force
        if g is None:
            g = self.force(pos)
        pos = np.array(pos, dtype=np.float64)
        mom = np.array(mom, dtype=np.float64)
        with self._phase():
            _kick_drift_wrap_inplace(
                pos, mom, g, st.kick_coeff(t1, tm), st.drift_coeff(t1, t2), self.box
            )
        g = self.force(pos)
        with self._phase():
            _kick_inplace(mom, g, st.kick_coeff(tm, t2))
        self._cached_force = g
        return pos, mom

    def reset_cache(self) -> None:
        """Invalidate the carried end-of-step force (call after any
        external change to the particle set)."""
        self._cached_force = None


class TwoLevelKDK:
    """The paper's step: 1 PM cycle + ``n_sub`` PP/drift cycles.

    Parameters
    ----------
    pm_force, pp_force:
        Callables ``pos -> acc`` for the long- and short-range parts.
    stepper:
        Coefficient provider (:mod:`repro.integrate.stepper`).
    n_sub:
        PP subcycles per PM step (2 in the paper).
    on_substep:
        Optional hook called before each PP force evaluation — the
        simulation driver uses it for the domain-decomposition update
        ("two cycles of the PP *and the domain decomposition*").
    ledger:
        Optional :class:`repro.utils.timer.TimingLedger` receiving the
        update arithmetic under the ``Update/kick-drift`` phase.
    """

    def __init__(
        self,
        pm_force: ForceFn,
        pp_force: ForceFn,
        stepper,
        n_sub: int = 2,
        box: float = 1.0,
        on_substep: Optional[Callable[[], None]] = None,
        ledger=None,
    ) -> None:
        if n_sub < 1:
            raise ValueError("n_sub must be >= 1")
        self.pm_force = pm_force
        self.pp_force = pp_force
        self.stepper = stepper
        self.n_sub = int(n_sub)
        self.box = float(box)
        self.on_substep = on_substep
        self.ledger = ledger
        self._pm_cache: Optional[np.ndarray] = None
        self._pp_cache: Optional[np.ndarray] = None

    def _phase(self):
        if self.ledger is None:
            return _NULL_PHASE
        return self.ledger.phase(UPDATE_PHASE)

    def step(
        self, pos: np.ndarray, mom: np.ndarray, t1: float, t2: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance one full PM step from t1 to t2."""
        st = self.stepper
        tm = 0.5 * (t1 + t2)

        g_pm = self._pm_cache if self._pm_cache is not None else self.pm_force(pos)
        pos = np.array(pos, dtype=np.float64)
        mom = np.array(mom, dtype=np.float64)
        with self._phase():
            _kick_inplace(mom, g_pm, st.kick_coeff(t1, tm))

        sub_edges = np.linspace(t1, t2, self.n_sub + 1)
        for s in range(self.n_sub):
            s1, s2 = sub_edges[s], sub_edges[s + 1]
            sm = 0.5 * (s1 + s2)
            if self.on_substep is not None:
                self.on_substep()
                self._pp_cache = None  # particle set may have changed
            g_pp = self._pp_cache if self._pp_cache is not None else self.pp_force(pos)
            with self._phase():
                _kick_drift_wrap_inplace(
                    pos, mom, g_pp,
                    st.kick_coeff(s1, sm), st.drift_coeff(s1, s2), self.box,
                )
            g_pp = self.pp_force(pos)
            with self._phase():
                _kick_inplace(mom, g_pp, st.kick_coeff(sm, s2))
            self._pp_cache = g_pp

        g_pm = self.pm_force(pos)
        with self._phase():
            _kick_inplace(mom, g_pm, st.kick_coeff(tm, t2))
        self._pm_cache = g_pm
        return pos, mom

    def reset_cache(self) -> None:
        self._pm_cache = None
        self._pp_cache = None


class _NullPhase:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()
