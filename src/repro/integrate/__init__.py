"""Time integration: comoving leapfrog with the paper's step structure.

One simulation step is "a cycle of the PM and two cycles of the PP and
the domain decomposition" — a two-level kick-drift-kick hierarchy in
which the long-range (PM) force kicks on the full step and the
short-range (PP) force on substeps (the multiple-stepsize method of
Skeel & Biesiadecki / Duncan, Levison & Lee).
"""

from repro.integrate.stepper import CosmoStepper, StaticStepper
from repro.integrate.leapfrog import LeapfrogIntegrator, TwoLevelKDK
from repro.integrate.timestep import (
    StepController,
    acceleration_timestep,
    suggest_scale_factor_step,
)

__all__ = [
    "CosmoStepper",
    "StaticStepper",
    "LeapfrogIntegrator",
    "TwoLevelKDK",
    "StepController",
    "acceleration_timestep",
    "suggest_scale_factor_step",
]
