"""Time-step selection: the multiple-stepsize criteria.

The paper integrates with the multiple stepsize method [Skeel &
Biesiadecki 1994; Duncan, Levison & Lee 1998]: the long-range force on
the full step, the short-range force on substeps, with the step sizes
set by the fastest dynamics present.  This module provides the standard
criteria used to choose those sizes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "acceleration_timestep",
    "suggest_scale_factor_step",
    "StepController",
]


def acceleration_timestep(
    acc: np.ndarray, eps: float, eta: float = 0.025
) -> float:
    """The standard collisionless criterion ``dt = eta sqrt(eps/|a|)``.

    Evaluated at the maximum acceleration so the densest region sets
    the clock.
    """
    acc = np.asarray(acc, dtype=np.float64)
    if eps <= 0 or eta <= 0:
        raise ValueError("eps and eta must be positive")
    amax = float(np.sqrt((acc**2).sum(axis=-1)).max()) if len(acc) else 0.0
    if amax == 0.0:
        return np.inf
    return eta * np.sqrt(eps / amax)


def suggest_scale_factor_step(
    a: float,
    acc: np.ndarray,
    eps: float,
    expansion,
    eta: float = 0.025,
    max_dloga: float = 0.05,
) -> float:
    """Scale-factor step honoring both criteria.

    The acceleration criterion limits the *time* step; with
    ``p = a^2 dx/dt`` dynamics, ``da = a H(a) dt``.  ``max_dloga``
    additionally bounds the step against the expansion itself (the
    standard ``dln a`` cap).
    """
    if not 0 < a:
        raise ValueError("a must be positive")
    dt = acceleration_timestep(acc, eps, eta)
    h = float(expansion.H(a))
    da_acc = a * h * dt if np.isfinite(dt) else np.inf
    return float(min(da_acc, a * max_dloga))


class StepController:
    """Adaptive scale-factor stepping for a cosmological run.

    Wraps :func:`suggest_scale_factor_step` with hysteresis: the step
    may shrink freely but grows at most by ``growth`` per step, the
    usual guard against oscillating step sizes.
    """

    def __init__(
        self,
        expansion,
        eps: float,
        eta: float = 0.025,
        max_dloga: float = 0.05,
        growth: float = 1.3,
    ) -> None:
        if growth <= 1.0:
            raise ValueError("growth must exceed 1")
        self.expansion = expansion
        self.eps = float(eps)
        self.eta = float(eta)
        self.max_dloga = float(max_dloga)
        self.growth = float(growth)
        self._last_da: float | None = None

    def next_step(self, a: float, acc: np.ndarray, a_end: float) -> float:
        """The next scale factor (clipped to ``a_end``)."""
        da = suggest_scale_factor_step(
            a, acc, self.eps, self.expansion, self.eta, self.max_dloga
        )
        if self._last_da is not None:
            da = min(da, self.growth * self._last_da)
        self._last_da = da
        return float(min(a + da, a_end))
