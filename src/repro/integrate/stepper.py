"""Kick/drift coefficient providers.

The leapfrog operators are

    drift: x += p * drift_coeff(t1, t2)
    kick:  p += g * kick_coeff(t1, t2)

where "time" is the scale factor for cosmological runs (momenta are
``p = a^2 dx/dt``) and plain time for static Newtonian runs (momenta
are velocities).  This abstraction lets the same integrator drive both.
"""

from __future__ import annotations

from repro.cosmology.expansion import Expansion
from repro.cosmology.params import CosmologyParams

__all__ = ["CosmoStepper", "StaticStepper"]


class StaticStepper:
    """Plain Newtonian dynamics: time is time, momenta are velocities."""

    cosmological = False

    def drift_coeff(self, t1: float, t2: float) -> float:
        return t2 - t1

    def kick_coeff(self, t1: float, t2: float) -> float:
        return t2 - t1


class CosmoStepper:
    """Comoving coordinates; the independent variable is the scale
    factor ``a`` and coefficients are the Friedmann integrals

        drift = int da / (a^3 H),   kick = int da / (a^2 H).
    """

    cosmological = True

    def __init__(self, params: CosmologyParams) -> None:
        self.params = params
        self.expansion = Expansion(params)

    def drift_coeff(self, a1: float, a2: float) -> float:
        return self.expansion.drift_factor(a1, a2)

    def kick_coeff(self, a1: float, a2: float) -> float:
        return self.expansion.kick_factor(a1, a2)
