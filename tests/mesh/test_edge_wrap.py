"""Regression tests for the box-edge wrap bug class.

A particle sitting exactly at the box edge (``x == box``), or pushed to
``u == n`` by the float rounding of ``x / h``, must deposit/interpolate
at grid index 0 — never out of range and never double-counted.  The
global paths wrap with ``ix %= n``; the local (ghosted) paths fold such
indices back by a full period (``repro.mesh.assignment._reimage_local``)
before the domain-violation check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh.assignment import (
    assign_mass,
    assign_mass_local,
    interpolate_local,
    interpolate_mesh,
)
from repro.meshcomm.slab import LocalMeshRegion

SCHEMES = ["ngp", "cic", "tsc"]
BOXES = [1.0, 0.7]
N = 8


def _edge_particles(box: float) -> np.ndarray:
    """Particles pinned at 0, just inside the far face, and exactly on it."""
    pos = np.full((4, 3), 0.4 * box)
    pos[0] = 0.0
    pos[1, 0] = np.nextafter(box, 0.0)
    pos[2, 1] = box  # exactly on the edge: u == n after x / h
    pos[3] = [0.0, np.nextafter(box, 0.0), box]
    return pos


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("box", BOXES)
def test_global_edge_particles_wrap_to_zero(scheme, box):
    pos = _edge_particles(box)
    mass = np.arange(1.0, len(pos) + 1)
    mesh = assign_mass(pos, mass, N, box=box, scheme=scheme)
    assert np.isclose(mesh.sum(), mass.sum())
    # NGP at x == box lands the whole mass in cell 0 along that axis
    if scheme == "ngp":
        assert mesh[:, 0, :].sum() >= mass[2]
    vals = interpolate_mesh(mesh, pos, box=box, scheme=scheme)
    assert np.all(np.isfinite(vals))


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("box", BOXES)
def test_local_edge_particle_folds_one_period(scheme, box):
    """A full-box local region provisioned with one ghost layer used to
    reject ``x == box`` (stencil index ``n + ghost + 1``); the fold maps
    it onto the equivalent cell one period down instead."""
    region = LocalMeshRegion(n=N, lo=(0, 0, 0), shape=(N, N, N), ghost=1)
    pos = _edge_particles(box)
    mass = np.full(len(pos), 0.25)
    out = assign_mass_local(pos, mass, region, box=box, scheme=scheme)
    # nothing may be lost: ghost planes alias interior cells and are
    # summed by the mesh conversion, so the raw local total is exact
    assert np.isclose(out.sum(), mass.sum())
    vals = interpolate_local(out, pos, region, box=box, scheme=scheme)
    assert np.all(np.isfinite(vals))


@pytest.mark.parametrize("scheme", SCHEMES)
def test_local_edge_matches_global_mass(scheme):
    """Folding must target the same physical cells as the global wrap:
    wrap the local (ghosted) deposit onto the global mesh and compare."""
    box = 0.7
    region = LocalMeshRegion(n=N, lo=(0, 0, 0), shape=(N, N, N), ghost=1)
    rng = np.random.default_rng(5)
    pos = np.vstack([_edge_particles(box), rng.random((40, 3)) * box])
    mass = rng.random(len(pos)) + 0.5
    local = assign_mass_local(pos, mass, region, box=box, scheme=scheme)
    folded = np.zeros((N, N, N))
    gx = region.wrapped_indices(0)
    gy = region.wrapped_indices(1)
    gz = region.wrapped_indices(2)
    np.add.at(
        folded,
        (
            gx[:, None, None],
            gy[None, :, None],
            gz[None, None, :],
        ),
        local,
    )
    ref = assign_mass(pos, mass, N, box=box, scheme=scheme)
    np.testing.assert_allclose(folded, ref, atol=1e-12)


def test_local_genuine_violation_still_raises():
    """The fold only spans one period: a particle truly outside the
    region (not a periodic image of it) must still be rejected."""
    region = LocalMeshRegion(n=N, lo=(0, 0, 0), shape=(3, N, N), ghost=1)
    pos = np.array([[0.75, 0.1, 0.1]])  # cell 6 of 8: off the 3-cell slab
    mass = np.ones(1)
    with pytest.raises(ValueError, match="stencil leaves the local mesh"):
        assign_mass_local(pos, mass, region, box=1.0, scheme="tsc")
    with pytest.raises(ValueError, match="stencil leaves the local mesh"):
        interpolate_local(region.allocate(), pos, region, box=1.0)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_previously_valid_inputs_unchanged(scheme, monkeypatch):
    """The fold may only touch previously-crashing cases: interior
    particles produce bitwise the same meshes as before (numpy path)."""
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    region = LocalMeshRegion(n=N, lo=(1, 1, 1), shape=(5, 5, 5), ghost=2)
    rng = np.random.default_rng(11)
    h = 1.0 / N
    pos = (1.5 + 3.0 * rng.random((64, 3))) * h  # safely interior
    mass = rng.random(64)
    out = assign_mass_local(pos, mass, region, box=1.0, scheme=scheme)
    # reference: the pre-fold arithmetic (indices are already in range,
    # so the fold is the identity and the deposits must agree exactly)
    from repro.mesh.assignment import _scatter_numpy, _weights_1d

    ref = region.allocate()
    u = pos / h
    origin = np.asarray(region.lo) - region.ghost
    idx_w = [_weights_1d(scheme, u[:, d]) for d in range(3)]
    lx, ly, lz = (idx - origin[d] for d, (idx, _) in enumerate(idx_w))
    (_, wx), (_, wy), (_, wz) = idx_w
    _scatter_numpy(ref, lx, ly, lz, wx, wy, wz, mass)
    assert np.array_equal(out, ref)
