"""Tests of the Green's function and the serial PM solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.forces.direct import direct_forces_cutoff
from repro.forces.ewald import EwaldSummation
from repro.mesh.differentiate import gradient_mesh
from repro.mesh.greens import build_greens_function, kvectors
from repro.mesh.poisson import PMSolver


class TestKvectors:
    def test_shapes_broadcast_to_rfft_mesh(self):
        kx, ky, kz = kvectors(8, rfft=True)
        assert (kx + ky + kz).shape == (8, 8, 5)

    def test_full_fft_shape(self):
        kx, ky, kz = kvectors(8, rfft=False)
        assert (kx + ky + kz).shape == (8, 8, 8)

    def test_nyquist_value(self):
        kx, _, _ = kvectors(8, box=2.0)
        assert kx.min() == pytest.approx(-np.pi * 8 / 2.0)


class TestGreensFunction:
    def test_dc_mode_zero(self):
        gk = build_greens_function(8)
        assert gk[0, 0, 0] == 0.0

    def test_all_finite(self):
        gk = build_greens_function(16, split=S2ForceSplit(0.2))
        assert np.all(np.isfinite(gk))

    def test_negative_definite(self):
        """Gravity is attractive: G(k) <= 0 for the plain solver."""
        gk = build_greens_function(8, deconvolve=False)
        assert np.all(gk <= 0.0)

    def test_split_suppresses_high_k(self):
        g_full = build_greens_function(32, deconvolve=False)
        g_split = build_greens_function(
            32, split=S2ForceSplit(8.0 / 32), deconvolve=False
        )
        ratio = np.abs(g_split[0, 0, 1:]) / np.abs(g_full[0, 0, 1:])
        # monotone-ish suppression toward the Nyquist frequency
        assert ratio[0] > 0.9
        assert ratio[-1] < 0.2

    def test_deconvolution_amplifies(self):
        g_raw = build_greens_function(16, deconvolve=False)
        g_dec = build_greens_function(16, deconvolve=True, assignment="tsc")
        assert np.all(np.abs(g_dec[1:, :, :]) >= np.abs(g_raw[1:, :, :]) - 1e-30)


class TestGradientMesh:
    def test_plane_wave_two_point(self):
        n = 32
        x = np.arange(n) / n
        phi = np.sin(2 * np.pi * x)[:, None, None] * np.ones((1, n, n))
        grad = gradient_mesh(phi, scheme="two_point")
        expected = 2 * np.pi * np.cos(2 * np.pi * x)
        # two-point scheme: effective k -> sin(kh)/h
        keff = np.sin(2 * np.pi / n) * n
        np.testing.assert_allclose(
            grad[:, 0, 0, 0], expected * keff / (2 * np.pi), atol=1e-12
        )
        np.testing.assert_allclose(grad[..., 1], 0.0, atol=1e-12)

    def test_four_point_more_accurate_than_two_point(self):
        n = 32
        x = np.arange(n) / n
        phi = np.sin(2 * np.pi * 3 * x)[:, None, None] * np.ones((1, n, n))
        exact = 6 * np.pi * np.cos(2 * np.pi * 3 * x)
        g2 = gradient_mesh(phi, scheme="two_point")[:, 0, 0, 0]
        g4 = gradient_mesh(phi, scheme="four_point")[:, 0, 0, 0]
        assert np.abs(g4 - exact).max() < np.abs(g2 - exact).max()

    def test_spectral_exact_for_resolved_modes(self):
        n = 16
        x = np.arange(n) / n
        phi = np.cos(2 * np.pi * 2 * x)[None, :, None] * np.ones((n, 1, n))
        grad = gradient_mesh(phi, scheme="spectral")
        exact = -4 * np.pi * np.sin(2 * np.pi * 2 * x)
        np.testing.assert_allclose(grad[0, :, 0, 1], exact, atol=1e-10)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            gradient_mesh(np.zeros((4, 4, 4)), scheme="six_point")

    def test_noncubic_rejected(self):
        with pytest.raises(ValueError):
            gradient_mesh(np.zeros((4, 4, 5)))


class TestPMSolverBasics:
    def test_mass_density_normalization(self, rng):
        solver = PMSolver(8)
        pos = rng.random((50, 3))
        mass = np.full(50, 0.02)
        rho = solver.density_mesh(pos, mass)
        # mean density = total mass / box volume
        assert rho.mean() == pytest.approx(1.0, rel=1e-12)

    def test_uniform_density_gives_zero_force(self):
        solver = PMSolver(8)
        phi = solver.potential_mesh(np.ones((8, 8, 8)))
        np.testing.assert_allclose(phi, 0.0, atol=1e-12)

    def test_forces_shape_and_finite(self, uniform_particles):
        pos, mass = uniform_particles
        solver = PMSolver(16)
        acc = solver.forces(pos, mass)
        assert acc.shape == pos.shape
        assert np.all(np.isfinite(acc))

    def test_momentum_conservation(self, clustered_particles):
        pos, mass = clustered_particles
        solver = PMSolver(16)
        acc = solver.forces(pos, mass)
        ptot = (mass[:, None] * acc).sum(axis=0)
        assert np.linalg.norm(ptot) < 1e-3 * np.abs(mass[:, None] * acc).sum()

    def test_small_mesh_rejected(self):
        with pytest.raises(ValueError):
            PMSolver(2)


class TestPMAccuracy:
    def test_pure_pm_matches_ewald_at_large_separation(self):
        """A two-particle force at separation >> h must match the exact
        periodic (Ewald) force to ~1%."""
        n = 32
        solver = PMSolver(n, differencing="four_point")
        ewald = EwaldSummation()
        pos = np.array([[0.25, 0.5, 0.5], [0.75, 0.5, 0.5]])
        # probe with a massless target at several separations
        src = np.array([[0.5, 0.5, 0.5]])
        mass = np.array([1.0])
        for d in (0.2, 0.3, 0.4):
            tgt = np.array([[0.5 + d, 0.5, 0.5]])
            a_pm = solver.forces(src, mass, targets=tgt)[0]
            a_ex = ewald.pair_acceleration(tgt[0] - src[0])
            np.testing.assert_allclose(a_pm, a_ex, rtol=0.05, atol=1e-3)

    def test_p3m_total_force_matches_ewald(self, rng):
        """PM (with S2 Green's function) + direct short-range cutoff
        forces must reproduce the exact Ewald force: the defining
        consistency property of the force split."""
        n = 16
        rcut = 4.0 / n
        split = S2ForceSplit(rcut)
        solver = PMSolver(n, split=split)
        ewald = EwaldSummation()

        pos = rng.random((32, 3))
        mass = rng.random(32) / 32 + 0.01
        a_long = solver.forces(pos, mass)
        a_short = direct_forces_cutoff(pos, mass, split, box=1.0)
        a_ex = ewald.forces(pos, mass)

        err = np.linalg.norm(a_long + a_short - a_ex, axis=1)
        scale = np.linalg.norm(a_ex, axis=1).mean()
        assert np.sqrt((err**2).mean()) / scale < 0.03

    def test_error_decreases_with_cutoff_radius(self, rng):
        """The paper's rcut = 3 mesh-cells choice trades accuracy for
        PP cost; larger rcut must strictly reduce the PM-side error."""
        n = 16
        ewald = EwaldSummation()
        pos = rng.random((24, 3))
        mass = np.full(24, 1.0 / 24)
        a_ex = ewald.forces(pos, mass)
        errors = []
        for cells in (2.0, 3.0, 5.0):
            split = S2ForceSplit(cells / n)
            solver = PMSolver(n, split=split)
            total = solver.forces(pos, mass) + direct_forces_cutoff(
                pos, mass, split, box=1.0
            )
            err = np.linalg.norm(total - a_ex, axis=1)
            errors.append(np.sqrt((err**2).mean()))
        assert errors[0] > errors[1] > errors[2]

    def test_isolated_particle_feels_no_self_force(self):
        solver = PMSolver(16)
        pos = np.array([[0.37, 0.52, 0.68]])  # generic off-grid position
        acc = solver.forces(pos, np.array([1.0]))
        # self-force from assignment/interpolation asymmetry is tiny
        assert np.linalg.norm(acc) < 1e-8 * 16**2

    def test_potential_at_matches_pairwise(self):
        """PM potential between two distant particles ~ Ewald pair
        potential up to the (common) self-energy constant."""
        n = 32
        solver = PMSolver(n)
        mass = np.array([1.0])
        # identical geometry rotated x -> y: exact cubic symmetry
        p1 = solver.potential_at(
            np.array([[0.3, 0.5, 0.5]]), mass, targets=np.array([[0.7, 0.5, 0.5]])
        )[0]
        p2 = solver.potential_at(
            np.array([[0.5, 0.3, 0.5]]), mass, targets=np.array([[0.5, 0.7, 0.5]])
        )[0]
        assert p1 == pytest.approx(p2, rel=1e-10)

    def test_deconvolution_power_validation(self):
        from repro.mesh.greens import build_greens_function

        with pytest.raises(ValueError):
            build_greens_function(8, deconvolve=3)
