"""Tests of the interlaced (alias-cancelling) density assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.forces.direct import direct_forces_cutoff
from repro.forces.ewald import EwaldSummation
from repro.mesh.poisson import PMSolver


class TestDensityK:
    def test_matches_plain_without_interlacing(self, rng):
        solver = PMSolver(16, interlace=False)
        pos = rng.random((40, 3))
        mass = np.ones(40)
        dk = solver.density_k(pos, mass)
        np.testing.assert_allclose(
            dk, np.fft.rfftn(solver.density_mesh(pos, mass)), atol=0
        )

    def test_dc_mode_preserved(self, rng):
        """Interlacing must not change the total mass (k = 0)."""
        solver = PMSolver(16, interlace=True)
        pos = rng.random((40, 3))
        mass = rng.random(40)
        dk = solver.density_k(pos, mass)
        cell_vol = (1.0 / 16) ** 3
        assert dk[0, 0, 0].real * cell_vol == pytest.approx(mass.sum(), rel=1e-12)
        assert abs(dk[0, 0, 0].imag) < 1e-10

    def test_low_k_modes_unchanged(self, rng):
        """Well-resolved modes are alias-free already: interlacing must
        leave them (nearly) untouched."""
        solver_p = PMSolver(32, interlace=False)
        solver_i = PMSolver(32, interlace=True)
        pos = rng.random((500, 3))
        mass = np.ones(500)
        dk_p = solver_p.density_k(pos, mass)
        dk_i = solver_i.density_k(pos, mass)
        # compare the lowest nonzero modes
        sel = (slice(0, 3), slice(0, 3), slice(0, 3))
        np.testing.assert_allclose(dk_i[sel], dk_p[sel], rtol=5e-3, atol=1e-6)

    def test_nyquist_plane_suppressed(self):
        """A particle pattern aliasing onto the Nyquist plane is
        cancelled by interlacing (the odd images flip sign)."""
        n = 8
        solver_p = PMSolver(n, interlace=False, assignment="cic")
        solver_i = PMSolver(n, interlace=True, assignment="cic")
        # particles exactly between grid points along x: maximum
        # aliasing configuration
        x = (np.arange(n) + 0.5) / n
        pos = np.stack(
            np.meshgrid(x, x[: n // 2] * 2, x[: n // 2] * 2, indexing="ij"), -1
        ).reshape(-1, 3)
        mass = np.ones(len(pos))
        dk_p = solver_p.density_k(pos, mass)
        dk_i = solver_i.density_k(pos, mass)
        nyq = np.abs(dk_i[n // 2]).max()
        assert nyq <= np.abs(dk_p[n // 2]).max() + 1e-9


class TestInterlacedForces:
    def test_p3m_consistency_still_holds(self, rng):
        """Interlaced PM + direct short range still matches Ewald."""
        n = 16
        split = S2ForceSplit(4.0 / n)
        solver = PMSolver(n, split=split, interlace=True)
        pos = rng.random((32, 3))
        mass = rng.random(32) / 32 + 0.01
        total = solver.forces(pos, mass) + direct_forces_cutoff(
            pos, mass, split, box=1.0
        )
        ref = EwaldSummation().forces(pos, mass)
        err = np.linalg.norm(total - ref, axis=1)
        scale = np.linalg.norm(ref, axis=1).mean()
        assert np.sqrt((err**2).mean()) / scale < 0.03

    def test_improves_pair_force_accuracy_with_spectral(self):
        """With spectral differencing (no differencing error masking
        the aliasing), interlacing reduces the rms pair-force error."""
        n = 16
        split = S2ForceSplit(3.0 / n)
        ewald = EwaldSummation()
        mass = np.array([1.0])

        def rms(solver, nsamp=40):
            rng = np.random.default_rng(1)
            errs = []
            for _ in range(nsamp):
                v = rng.standard_normal(3)
                v *= rng.uniform(0.05, 0.5) / np.linalg.norm(v)
                src = rng.random(3)
                tgt = (src + v) % 1.0
                apm = solver.forces(src[None], mass, targets=tgt[None])[0]
                r = np.linalg.norm(v)
                ash = -split.short_range_factor(np.array([r]))[0] * v / r**3
                aex = ewald.pair_acceleration(v)
                errs.append(
                    np.linalg.norm(apm + ash - aex) / np.linalg.norm(aex)
                )
            return float(np.sqrt(np.mean(np.array(errs) ** 2)))

        plain = rms(PMSolver(n, split=split, differencing="spectral"))
        inter = rms(
            PMSolver(n, split=split, differencing="spectral", interlace=True)
        )
        assert inter < plain
