"""Tests of mass assignment and mesh interpolation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mesh.assignment import (
    assign_mass,
    assignment_order,
    interpolate_mesh,
    window_ft,
)

SCHEMES = ["ngp", "cic", "tsc"]


class TestAssignMass:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_total_mass_conserved(self, scheme, rng):
        pos = rng.random((100, 3))
        mass = rng.random(100)
        mesh = assign_mass(pos, mass, 16, scheme=scheme)
        assert mesh.sum() == pytest.approx(mass.sum(), rel=1e-12)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_nonnegative_weights(self, scheme, rng):
        pos = rng.random((50, 3))
        mesh = assign_mass(pos, np.ones(50), 8, scheme=scheme)
        assert np.all(mesh >= 0.0)

    def test_ngp_single_particle_on_gridpoint(self):
        pos = np.array([[0.25, 0.5, 0.75]])  # grid points of n=4
        mesh = assign_mass(pos, np.array([2.0]), 4, scheme="ngp")
        assert mesh[1, 2, 3] == pytest.approx(2.0)
        assert mesh.sum() == pytest.approx(2.0)

    def test_cic_splits_between_cells(self):
        # particle halfway between grid points 0 and 1 in x
        pos = np.array([[0.5 / 4, 0.0, 0.0]])
        mesh = assign_mass(pos, np.array([1.0]), 4, scheme="cic")
        assert mesh[0, 0, 0] == pytest.approx(0.5)
        assert mesh[1, 0, 0] == pytest.approx(0.5)

    def test_tsc_on_gridpoint_weights(self):
        # particle exactly on a grid point: weights 1/8, 3/4, 1/8 per axis
        pos = np.array([[0.25, 0.25, 0.25]])
        mesh = assign_mass(pos, np.array([1.0]), 4, scheme="tsc")
        assert mesh[1, 1, 1] == pytest.approx(0.75**3)
        assert mesh[0, 1, 1] == pytest.approx(0.125 * 0.75**2)
        assert mesh[2, 0, 2] == pytest.approx(0.125**3)

    def test_periodic_wrapping(self):
        # particle at the box edge spreads onto both sides
        pos = np.array([[0.999, 0.5, 0.5]])
        mesh = assign_mass(pos, np.array([1.0]), 8, scheme="tsc")
        assert mesh.sum() == pytest.approx(1.0)
        assert mesh[0].sum() > 0  # wrapped contribution

    def test_uniform_lattice_gives_uniform_mesh(self):
        g = (np.arange(8) + 0.0) / 8.0
        pos = np.stack(np.meshgrid(g, g, g, indexing="ij"), -1).reshape(-1, 3)
        mesh = assign_mass(pos, np.ones(len(pos)), 8, scheme="tsc")
        np.testing.assert_allclose(mesh, 1.0, atol=1e-12)

    def test_out_accumulates(self, rng):
        pos = rng.random((10, 3))
        mass = np.ones(10)
        mesh = assign_mass(pos, mass, 8)
        mesh2 = assign_mass(pos, mass, 8, out=mesh.copy())
        np.testing.assert_allclose(mesh2, 2 * mesh)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            assign_mass(np.zeros((3, 2)), np.ones(3), 8)
        with pytest.raises(ValueError):
            assign_mass(np.zeros((3, 3)), np.ones(3), 8, scheme="bad")
        with pytest.raises(ValueError):
            assign_mass(np.zeros((3, 3)), np.ones(3), 8, out=np.zeros((4, 4, 4)))

    @given(
        hnp.arrays(
            np.float64,
            (20, 3),
            elements=st.floats(min_value=0.0, max_value=0.99),
        )
    )
    def test_property_mass_conservation(self, pos):
        mesh = assign_mass(pos, np.ones(20), 8, scheme="tsc")
        assert mesh.sum() == pytest.approx(20.0, rel=1e-10)


class TestInterpolateMesh:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_constant_field_exact(self, scheme, rng):
        mesh = np.full((8, 8, 8), 3.5)
        pos = rng.random((40, 3))
        vals = interpolate_mesh(mesh, pos, scheme=scheme)
        np.testing.assert_allclose(vals, 3.5, rtol=1e-12)

    def test_linear_field_exact_for_cic(self):
        """CIC interpolation reproduces linear fields exactly away from
        the periodic wrap."""
        n = 16
        x = np.arange(n) / n
        mesh = np.broadcast_to(x[:, None, None], (n, n, n)).copy()
        pos = np.array([[0.31, 0.5, 0.5], [0.62, 0.1, 0.9]])
        vals = interpolate_mesh(mesh, pos, scheme="cic")
        np.testing.assert_allclose(vals, pos[:, 0], atol=1e-12)

    def test_vector_field_components(self, rng):
        mesh = rng.random((8, 8, 8, 3))
        pos = rng.random((10, 3))
        vals = interpolate_mesh(mesh, pos, scheme="tsc")
        assert vals.shape == (10, 3)
        for d in range(3):
            comp = interpolate_mesh(mesh[..., d], pos, scheme="tsc")
            np.testing.assert_allclose(vals[:, d], comp)

    def test_assignment_interpolation_adjointness(self, rng):
        """<assign(m), f> == <m, interp(f)>: the two operations use the
        same window and are adjoint."""
        n = 8
        pos = rng.random((25, 3))
        mass = rng.random(25)
        field = rng.random((n, n, n))
        lhs = np.sum(assign_mass(pos, mass, n, scheme="tsc") * field)
        rhs = np.sum(mass * interpolate_mesh(field, pos, scheme="tsc"))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_rejects_noncubic_mesh(self):
        with pytest.raises(ValueError):
            interpolate_mesh(np.zeros((4, 5, 4)), np.zeros((1, 3)))


class TestWindowFT:
    def test_orders(self):
        assert assignment_order("ngp") == 1
        assert assignment_order("cic") == 2
        assert assignment_order("tsc") == 3
        with pytest.raises(ValueError):
            assignment_order("pcs")

    def test_dc_value_is_one(self):
        for scheme in SCHEMES:
            assert window_ft(scheme, np.array([0.0]), 0.1)[0] == pytest.approx(1.0)

    def test_higher_order_decays_faster(self):
        k = np.array([20.0])
        h = 0.1
        w_ngp = window_ft("ngp", k, h)[0]
        w_cic = window_ft("cic", k, h)[0]
        w_tsc = window_ft("tsc", k, h)[0]
        assert w_tsc < w_cic < w_ngp

    def test_window_positive_below_nyquist(self):
        h = 1.0 / 32
        k_nyq = np.pi / h
        k = np.linspace(0, k_nyq, 100)
        for scheme in SCHEMES:
            assert np.all(window_ft(scheme, k, h) > 0)
