"""Tests of the Hockney-Eastwood optimal influence function."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.forces.ewald import EwaldSummation
from repro.mesh.greens import (
    _differencing_transfer,
    build_greens_function,
    build_optimal_greens_function,
)
from repro.mesh.poisson import PMSolver


class TestDifferencingTransfer:
    def test_spectral_is_identity(self):
        k = np.linspace(-10, 10, 21)
        np.testing.assert_array_equal(
            _differencing_transfer(k, 0.1, "spectral"), k
        )

    def test_low_k_limits(self):
        """All schemes reduce to d(k) = k for kh << 1."""
        k = np.array([0.01])
        for scheme in ("two_point", "four_point"):
            d = _differencing_transfer(k, 0.05, scheme)
            assert d[0] == pytest.approx(0.01, rel=1e-4)

    def test_four_point_more_accurate(self):
        k = np.array([5.0])
        h = 0.1
        d2 = _differencing_transfer(k, h, "two_point")[0]
        d4 = _differencing_transfer(k, h, "four_point")[0]
        assert abs(d4 - 5.0) < abs(d2 - 5.0)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            _differencing_transfer(np.array([1.0]), 0.1, "six_point")


class TestOptimalGreens:
    def test_reduces_to_standard_without_aliases(self):
        """alias_range=0 with spectral differencing = plain deconvolved
        Green's function (the no-alias, exact-derivative limit)."""
        split = S2ForceSplit(3.0 / 16)
        g_opt = build_optimal_greens_function(
            16, split=split, differencing="spectral", alias_range=0
        )
        g_std = build_greens_function(16, split=split, deconvolve=2)
        np.testing.assert_allclose(g_opt, g_std, rtol=1e-10, atol=1e-8)

    def test_dc_mode_zero(self):
        g = build_optimal_greens_function(8)
        assert g[0, 0, 0] == 0.0

    def test_finite_everywhere(self):
        g = build_optimal_greens_function(16, split=S2ForceSplit(0.2))
        assert np.all(np.isfinite(g))

    def test_validation(self):
        with pytest.raises(ValueError):
            build_optimal_greens_function(8, alias_range=-1)
        with pytest.raises(ValueError):
            PMSolver(8, greens_mode="maximal")


class TestOptimalAccuracy:
    def test_beats_standard_pipeline(self):
        """The optimizing property: lower *mean-square* pair-force
        error than the naive deconvolution, measured pairwise on the
        same sample points (the H&E function minimizes the ensemble
        MSE, so individual configurations may go either way)."""
        n = 16
        split = S2ForceSplit(3.0 / n)
        ewald = EwaldSummation()
        mass = np.array([1.0])
        solvers = {
            "std": PMSolver(n, split=split),
            "opt": PMSolver(n, split=split, greens_mode="optimal"),
        }
        rng = np.random.default_rng(3)
        sq = {"std": [], "opt": []}
        for _ in range(150):
            v = rng.standard_normal(3)
            v *= rng.uniform(0.05, 0.5) / np.linalg.norm(v)
            src = rng.random(3)
            tgt = (src + v) % 1.0
            r = np.linalg.norm(v)
            ash = -split.short_range_factor(np.array([r]))[0] * v / r**3
            aex = ewald.pair_acceleration(v)
            for name, solver in solvers.items():
                apm = solver.forces(src[None], mass, targets=tgt[None])[0]
                sq[name].append(
                    (np.linalg.norm(apm + ash - aex) / np.linalg.norm(aex)) ** 2
                )
        assert np.mean(sq["opt"]) < np.mean(sq["std"])

    def test_p3m_consistency(self, rng):
        """Total force with the optimal function still matches Ewald."""
        from repro.forces.direct import direct_forces_cutoff

        n = 16
        split = S2ForceSplit(4.0 / n)
        solver = PMSolver(n, split=split, greens_mode="optimal")
        pos = rng.random((32, 3))
        mass = rng.random(32) / 32 + 0.01
        total = solver.forces(pos, mass) + direct_forces_cutoff(
            pos, mass, split, box=1.0
        )
        ref = EwaldSummation().forces(pos, mass)
        err = np.linalg.norm(total - ref, axis=1)
        assert np.sqrt((err**2).mean()) / np.linalg.norm(ref, axis=1).mean() < 0.03
