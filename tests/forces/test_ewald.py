"""Tests of the Ewald summation reference solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.ewald import EwaldSummation


@pytest.fixture(scope="module")
def ewald():
    return EwaldSummation(box=1.0)


class TestEwaldInvariances:
    def test_alpha_independence(self):
        """The Ewald force must not depend on the splitting parameter."""
        dx = np.array([0.21, -0.13, 0.34])
        e1 = EwaldSummation(box=1.0, alpha=1.5, nmax=4, kmax=10)
        e2 = EwaldSummation(box=1.0, alpha=2.5, nmax=4, kmax=10)
        np.testing.assert_allclose(
            e1.pair_acceleration(dx), e2.pair_acceleration(dx), atol=1e-9
        )

    def test_periodicity(self, ewald):
        dx = np.array([0.2, 0.3, -0.1])
        for shift in ([1, 0, 0], [0, -1, 0], [2, 1, -1]):
            np.testing.assert_allclose(
                ewald.pair_acceleration(dx),
                ewald.pair_acceleration(dx + np.array(shift, dtype=float)),
                atol=1e-10,
            )

    def test_antisymmetry(self, ewald):
        dx = np.array([0.17, 0.05, -0.29])
        np.testing.assert_allclose(
            ewald.pair_acceleration(dx),
            -ewald.pair_acceleration(-dx),
            atol=1e-12,
        )

    def test_cubic_symmetry(self, ewald):
        """Permuting coordinates permutes the force components."""
        dx = np.array([0.11, 0.23, 0.31])
        a = ewald.pair_acceleration(dx)
        a_perm = ewald.pair_acceleration(dx[[1, 2, 0]])
        np.testing.assert_allclose(a[[1, 2, 0]], a_perm, atol=1e-12)

    def test_zero_at_special_points(self, ewald):
        """By symmetry the periodic force vanishes at the cube center
        displacement (0.5, 0.5, 0.5) and at zero separation."""
        np.testing.assert_allclose(
            ewald.pair_acceleration(np.array([0.5, 0.5, 0.5])), 0.0, atol=1e-10
        )
        np.testing.assert_allclose(
            ewald.pair_acceleration(np.zeros(3)), 0.0, atol=1e-12
        )


class TestEwaldLimits:
    def test_short_distance_newtonian(self, ewald):
        """At r << box the force approaches the isolated Newtonian one."""
        dx = np.array([0.01, 0.0, 0.0])
        acc = ewald.pair_acceleration(dx)
        newton = -dx / np.linalg.norm(dx) ** 3
        # periodic correction is O(r / L^3) relative here
        np.testing.assert_allclose(acc, newton, rtol=2e-3, atol=1e-5)

    def test_linear_correction_term(self, ewald):
        """The leading periodic correction is + (4 pi / 3 L^3) r (the
        neutralizing background inside the sphere of radius r)."""
        for x in (0.05, 0.1):
            dx = np.array([x, 0.0, 0.0])
            acc = ewald.pair_acceleration(dx)[0]
            newton = -1.0 / x**2
            correction = acc - newton
            expected = 4.0 * np.pi / 3.0 * x
            assert correction == pytest.approx(expected, rel=0.05)


class TestEwaldForces:
    def test_momentum_conservation(self, ewald):
        rng = np.random.default_rng(3)
        pos = rng.random((24, 3))
        mass = rng.random(24) + 0.5
        acc = ewald.forces(pos, mass)
        np.testing.assert_allclose((mass[:, None] * acc).sum(axis=0), 0.0, atol=1e-8)

    def test_uniform_lattice_has_zero_force(self, ewald):
        """A perfect cubic lattice is an equilibrium of periodic gravity."""
        g = np.arange(4) / 4.0
        pos = np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1).reshape(-1, 3)
        mass = np.ones(len(pos))
        acc = ewald.forces(pos, mass)
        np.testing.assert_allclose(acc, 0.0, atol=1e-8)

    def test_chunking_invariance(self, ewald):
        rng = np.random.default_rng(5)
        pos = rng.random((30, 3))
        mass = np.ones(30)
        a1 = ewald.forces(pos, mass, chunk=7)
        a2 = ewald.forces(pos, mass, chunk=64)
        np.testing.assert_allclose(a1, a2, atol=0)

    def test_softening_matches_direct_at_close_range(self, ewald):
        """With eps > 0, a very tight pair feels the Plummer force."""
        pos = np.array([[0.5, 0.5, 0.5], [0.5005, 0.5, 0.5]])
        mass = np.ones(2)
        eps = 1e-3
        acc = ewald.forces(pos, mass, eps=eps)
        r = 0.0005
        plummer = r / (r**2 + eps**2) ** 1.5
        assert acc[0, 0] == pytest.approx(plummer, rel=1e-3)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EwaldSummation(box=0.0)
        with pytest.raises(ValueError):
            EwaldSummation(box=1.0, alpha=-1.0)
