"""Tests of the tabulated Ewald correction and the exact-periodic tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.ewald import EwaldSummation
from repro.forces.ewald_table import EwaldCorrectionTable, get_correction_table
from repro.tree.traversal import TreeSolver, tree_forces
from repro.utils.periodic import minimum_image


@pytest.fixture(scope="module")
def table():
    return get_correction_table(n=32, box=1.0)


@pytest.fixture(scope="module")
def ewald():
    return EwaldSummation()


class TestCorrectionField:
    def test_vanishes_at_origin(self, table):
        np.testing.assert_allclose(
            table.correction(np.zeros((1, 3))), 0.0, atol=1e-10
        )

    def test_linear_background_near_origin(self, table):
        """f_corr ~ (4 pi / 3) dx for small dx."""
        dx = np.array([[0.02, 0.0, 0.0]])
        corr = table.correction(dx)[0]
        assert corr[0] == pytest.approx(4 * np.pi / 3 * 0.02, rel=0.05)

    def test_matches_exact_correction(self, table, ewald):
        rng = np.random.default_rng(1)
        dx = rng.uniform(-0.5, 0.5, (200, 3))
        exact = ewald.pair_acceleration(dx)
        r2 = np.einsum("ij,ij->i", dx, dx)
        newton = -dx / r2[:, None] ** 1.5
        err = np.abs(table.correction(dx) - (exact - newton))
        assert err.max() < 2e-2  # trilinear table resolution

    def test_odd_symmetry(self, table):
        dx = np.array([[0.21, 0.13, 0.34]])
        c1 = table.correction(dx)
        c2 = table.correction(-dx)
        np.testing.assert_allclose(c1, -c2, atol=1e-14)
        # per-axis reflection flips only that component
        dx_ref = dx * np.array([-1.0, 1.0, 1.0])
        c3 = table.correction(dx_ref)
        np.testing.assert_allclose(c3[0, 0], -c1[0, 0], atol=1e-14)
        np.testing.assert_allclose(c3[0, 1:], c1[0, 1:], atol=1e-14)

    def test_periodicity(self, table):
        dx = np.array([[0.3, -0.2, 0.1]])
        np.testing.assert_allclose(
            table.correction(dx),
            table.correction(dx + np.array([[1.0, -2.0, 3.0]])),
            atol=1e-12,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            EwaldCorrectionTable(n=2)

    def test_cache_returns_same_object(self):
        assert get_correction_table(n=32, box=1.0) is get_correction_table(
            n=32, box=1.0
        )


class TestExactPeriodicTree:
    def test_fixes_the_minimum_image_floor(self, ewald, clustered_particles):
        """The corrected tree beats the plain minimum-image tree against
        the exact periodic force — the O(1) floor is gone."""
        pos, mass = clustered_particles
        ref = ewald.forces(pos, mass, eps=1e-3)

        def rms(**kw):
            acc, _ = tree_forces(
                pos, mass, theta=0.3, eps=1e-3, periodic=True, group_size=32,
                **kw,
            )
            err = np.linalg.norm(acc - ref, axis=1)
            return np.sqrt((err**2).mean()) / np.linalg.norm(ref, axis=1).mean()

        plain = rms()
        corrected = rms(ewald_correction=True)
        assert corrected < 0.5 * plain
        assert corrected < 0.02

    def test_exactly_opened_tree_matches_ewald(self, ewald, rng):
        """theta -> 0 with corrections = direct Ewald summation up to
        table interpolation error."""
        pos = rng.random((40, 3))
        mass = np.full(40, 1.0 / 40)
        acc, _ = tree_forces(
            pos, mass, theta=1e-6, eps=1e-4, periodic=True,
            ewald_correction=True,
        )
        ref = ewald.forces(pos, mass, eps=1e-4)
        err = np.linalg.norm(acc - ref, axis=1)
        assert err.max() / np.linalg.norm(ref, axis=1).mean() < 0.01

    def test_requires_periodic_pure_tree(self):
        from repro.forces.cutoff import S2ForceSplit

        with pytest.raises(ValueError, match="periodic pure-tree"):
            TreeSolver(periodic=False, ewald_correction=True)
        with pytest.raises(ValueError, match="periodic pure-tree"):
            TreeSolver(split=S2ForceSplit(0.1), ewald_correction=True)
