"""Tests of the g_P3M cutoff function (paper eq. 3) and force splits."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy.integrate import quad

from repro.forces.cutoff import (
    GaussianForceSplit,
    S2ForceSplit,
    gaussian_force_cutoff,
    get_split,
    gp3m_cutoff,
    gp3m_potential_cutoff,
    s2_shape_factor,
)


class TestGp3mCutoff:
    def test_unity_at_origin(self):
        assert gp3m_cutoff(0.0) == pytest.approx(1.0)

    def test_zero_at_two(self):
        # g(2) = 67/35 - 67/35 = 0 exactly (see eq. 3)
        assert gp3m_cutoff(2.0) == pytest.approx(0.0, abs=1e-14)

    def test_zero_beyond_two(self):
        xi = np.linspace(2.0, 10.0, 50)
        assert np.all(gp3m_cutoff(xi) == 0.0)

    def test_continuous_at_branch_point(self):
        # zeta = max(0, xi-1) introduces a branch at xi = 1
        left = gp3m_cutoff(1.0 - 1e-9)
        right = gp3m_cutoff(1.0 + 1e-9)
        assert left == pytest.approx(right, abs=1e-7)

    def test_value_at_branch_point(self):
        # g(1) = 1 - 1/2 - 12/35 + 3/20 (analytic evaluation of eq. 3)
        expected = 1.0 - 0.5 - 12.0 / 35.0 + 3.0 / 20.0
        assert gp3m_cutoff(1.0) == pytest.approx(expected, rel=1e-14)

    def test_monotonically_decreasing(self):
        xi = np.linspace(0.0, 2.0, 2001)
        g = gp3m_cutoff(xi)
        assert np.all(np.diff(g) <= 1e-12)

    def test_bounded_between_zero_and_one(self):
        xi = np.linspace(0.0, 3.0, 1000)
        g = gp3m_cutoff(xi)
        assert np.all(g <= 1.0 + 1e-14)
        assert np.all(g >= -1e-14)

    def test_smooth_derivative_at_branch(self):
        # the zeta^6 factor makes the correction C^5-smooth at xi = 1
        h = 1e-5
        d_left = (gp3m_cutoff(1.0) - gp3m_cutoff(1.0 - h)) / h
        d_right = (gp3m_cutoff(1.0 + h) - gp3m_cutoff(1.0)) / h
        assert d_left == pytest.approx(d_right, abs=1e-3)

    def test_matches_s2_pair_force_integral(self):
        """g(xi) must equal 1 - F_S2S2(r) r^2: the residual after
        subtracting the force between two S2 clouds (Fourier integral)."""

        def f_s2s2(r, rcut):
            # F(r) = -(2/pi) d/dr int dk S(k rcut)^2 j0(kr)
            #      = (2/pi) int dk S^2 * [sin(kr)/(k r^2) - cos(kr)/r]... use
            # derivative of j0: dU/dr with U = -(2/pi) int S^2 j0(kr) dk
            def integrand(k):
                s2 = s2_shape_factor(k * rcut) ** 2
                kr = k * r
                dj0 = (np.cos(kr) * kr - np.sin(kr)) / (kr * kr) * k
                return s2 * dj0

            val, _ = quad(integrand, 0.0, 800.0, limit=800)
            return (2.0 / np.pi) * val  # = -dU/dr * ... sign handled below

        rcut = 1.0
        for xi in (0.25, 0.75, 1.25, 1.75):
            r = xi * rcut / 2.0
            # attraction magnitude between the two clouds:
            fpm = -f_s2s2(r, rcut)  # positive
            expected = 1.0 - fpm * r * r
            assert gp3m_cutoff(xi) == pytest.approx(expected, abs=1e-7)

    @given(st.floats(min_value=0.0, max_value=5.0))
    def test_property_range(self, xi):
        g = float(gp3m_cutoff(xi))
        assert 0.0 - 1e-12 <= g <= 1.0 + 1e-12

    def test_vectorized_matches_scalar(self):
        xi = np.linspace(0, 2.5, 17)
        vec = gp3m_cutoff(xi)
        scl = np.array([float(gp3m_cutoff(x)) for x in xi])
        np.testing.assert_allclose(vec, scl, rtol=0, atol=0)


class TestGp3mPotentialCutoff:
    def test_unity_at_origin_limit(self):
        # h(xi) -> 1 as xi -> 0 (pure Newtonian potential at short range)
        assert gp3m_potential_cutoff(1e-9) == pytest.approx(1.0, abs=1e-6)

    def test_zero_beyond_cutoff(self):
        assert gp3m_potential_cutoff(2.0) == pytest.approx(0.0, abs=1e-14)
        assert np.all(gp3m_potential_cutoff(np.array([2.5, 3.0, 10.0])) == 0.0)

    def test_consistent_with_force_by_differentiation(self):
        """-d/dr [h(2r/rcut)/r] must equal g(2r/rcut)/r^2."""
        rcut = 1.0
        r = np.linspace(0.05, 0.99, 40) * rcut
        h = 1e-6

        def phi(rr):
            return gp3m_potential_cutoff(2.0 * rr / rcut) / rr

        force_num = -(phi(r + h) - phi(r - h)) / (2 * h)
        force_ana = gp3m_cutoff(2.0 * r / rcut) / r**2
        np.testing.assert_allclose(force_num, force_ana, rtol=5e-5, atol=1e-7)

    def test_monotone_decreasing(self):
        xi = np.linspace(1e-4, 2.0, 500)
        h = gp3m_potential_cutoff(xi)
        assert np.all(np.diff(h) <= 1e-12)


class TestS2ShapeFactor:
    def test_unity_at_zero(self):
        assert s2_shape_factor(0.0) == pytest.approx(1.0)

    def test_series_matches_exact_at_crossover(self):
        # the series branch (u < 0.1, i.e. x < 0.2) must agree with the
        # exact formula evaluated at the same point
        x = 0.1999
        u = x / 2.0
        exact = 12.0 / u**4 * (2.0 - 2.0 * np.cos(u) - u * np.sin(u))
        assert float(s2_shape_factor(x)) == pytest.approx(exact, rel=1e-9)

    def test_decays_at_large_k(self):
        assert abs(s2_shape_factor(100.0)) < 2e-3

    def test_is_fourier_transform_of_s2_density(self):
        """S(k rcut) must equal 4 pi int r^2 rho(r) sinc(kr) dr for the
        linearly-decreasing S2 profile of eq. (1)."""
        rcut = 1.0
        a = rcut / 2.0

        def rho(r):  # unit-mass S2 profile
            return 24.0 / (np.pi * rcut**3) * (1.0 - 2.0 * r / rcut)

        for k in (0.5, 2.0, 7.0, 20.0):
            val, _ = quad(
                lambda r: 4 * np.pi * r**2 * rho(r) * np.sinc(k * r / np.pi),
                0.0,
                a,
            )
            assert s2_shape_factor(k * rcut) == pytest.approx(val, abs=1e-10)

    @given(st.floats(min_value=0.0, max_value=50.0))
    def test_property_bounded_by_one(self, x):
        assert abs(float(s2_shape_factor(x))) <= 1.0 + 1e-12


class TestS2ForceSplit:
    def test_short_plus_long_reconstructs_newton_in_kspace(self):
        """At k = 0 the long-range factor is 1 (all power); the short
        range correspondingly vanishes at r >> rcut."""
        split = S2ForceSplit(rcut=0.1)
        assert split.long_range_kspace_factor(0.0) == pytest.approx(1.0)
        assert split.short_range_factor(np.array([0.2])) == 0.0

    def test_cutoff_radius(self):
        split = S2ForceSplit(rcut=0.05)
        assert split.cutoff_radius == 0.05
        r = np.linspace(0.0501, 1.0, 20)
        assert np.all(split.short_range_factor(r) == 0.0)

    def test_rejects_nonpositive_rcut(self):
        with pytest.raises(ValueError):
            S2ForceSplit(rcut=0.0)
        with pytest.raises(ValueError):
            S2ForceSplit(rcut=-1.0)


class TestGaussianForceSplit:
    def test_short_range_factor_limits(self):
        split = GaussianForceSplit(rs=0.02)
        assert split.short_range_factor(np.array([1e-8]))[0] == pytest.approx(
            1.0, abs=1e-6
        )
        assert split.short_range_factor(np.array([1.0]))[0] == 0.0

    def test_effective_cutoff_is_where_tail_crosses_eps(self):
        split = GaussianForceSplit(rs=0.02, tail_eps=1e-5)
        rc = split.cutoff_radius
        assert gaussian_force_cutoff(rc, 0.02) == pytest.approx(1e-5, rel=1e-6)

    def test_kspace_factor(self):
        split = GaussianForceSplit(rs=0.02)
        assert split.long_range_kspace_factor(0.0) == pytest.approx(1.0)
        assert split.long_range_kspace_factor(1000.0) < 1e-10

    def test_complementarity_short_long(self):
        """short factor == 1 - r^2 * (long-range real-space force):
        for the Gaussian split, erfc + gaussian term + erf-part = 1."""
        from scipy.special import erf

        rs = 0.05
        r = np.linspace(0.001, 0.5, 50)
        short = gaussian_force_cutoff(r, rs)
        u = r / (2 * rs)
        long_factor = erf(u) - (2 / np.sqrt(np.pi)) * u * np.exp(-(u**2))
        np.testing.assert_allclose(short + long_factor, 1.0, atol=1e-12)


class TestGetSplit:
    def test_s2(self):
        split = get_split("s2", 0.1)
        assert isinstance(split, S2ForceSplit)
        assert split.rcut == 0.1

    def test_gaussian(self):
        split = get_split("gaussian", 0.1)
        assert isinstance(split, GaussianForceSplit)
        # effective support comparable to the requested rcut
        assert 0.03 < split.cutoff_radius < 0.3

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_split("spline", 0.1)
