"""Tests of the Ewald potential and total energy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.ewald import EwaldSummation

#: the Ewald lattice constant: psi_self = -2.837297... (electrostatic
#: convention); gravity flips the sign
EWALD_SELF = 2.837297


@pytest.fixture(scope="module")
def ewald():
    return EwaldSummation()


class TestPotential:
    def test_lattice_constant(self, ewald):
        """A single unit mass in a unit box: phi = +2.8373 G m."""
        phi = ewald.potential(np.array([[0.3, 0.4, 0.5]]), np.array([1.0]))
        assert phi[0] == pytest.approx(EWALD_SELF, abs=2e-5)

    def test_alpha_independence(self):
        p1 = EwaldSummation(alpha=1.5, nmax=4, kmax=10).potential(
            np.array([[0.2, 0.2, 0.2]]), np.array([1.0])
        )
        p2 = EwaldSummation(alpha=3.0, nmax=4, kmax=10).potential(
            np.array([[0.2, 0.2, 0.2]]), np.array([1.0])
        )
        assert p1[0] == pytest.approx(p2[0], abs=1e-8)

    def test_translation_invariance(self, ewald):
        pos = np.array([[0.1, 0.2, 0.3], [0.6, 0.7, 0.8]])
        mass = np.array([1.0, 3.0])
        shift = np.array([0.37, -0.21, 0.55])
        p1 = ewald.potential(pos, mass)
        p2 = ewald.potential(np.mod(pos + shift, 1.0), mass)
        np.testing.assert_allclose(p1, p2, atol=1e-9)

    def test_gradient_is_minus_force(self, ewald):
        pos = np.array([[0.3, 0.5, 0.5], [0.62, 0.48, 0.55]])
        mass = np.array([1.0, 2.0])
        h = 1e-5
        grad = np.zeros(3)
        for d in range(3):
            pp, pm = pos.copy(), pos.copy()
            pp[0, d] += h
            pm[0, d] -= h
            grad[d] = (
                ewald.potential(pp, mass)[0] - ewald.potential(pm, mass)[0]
            ) / (2 * h)
        acc = ewald.forces(pos, mass)[0]
        np.testing.assert_allclose(acc, -grad, rtol=1e-6, atol=1e-8)

    def test_pair_offset_matches_pm(self, ewald):
        """Pair potential = -1/r + (lattice constant) + O(r^2): the
        positive periodic offset the PM solver measures independently."""
        pos = np.array([[0.3, 0.5, 0.5], [0.34, 0.5, 0.5]])
        mass = np.array([1.0, 0.0])
        phi = ewald.potential(pos, mass)[1]
        r = 0.04
        assert phi == pytest.approx(-1.0 / r + EWALD_SELF, abs=0.02)

    def test_targets_subset(self, ewald, rng):
        pos = rng.random((20, 3))
        mass = rng.random(20)
        full = ewald.potential(pos, mass)
        sub = ewald.potential(pos, mass, targets=np.array([3, 7]))
        np.testing.assert_allclose(sub, full[[3, 7]], atol=0)

    def test_softening_correction(self, ewald):
        pos = np.array([[0.5, 0.5, 0.5], [0.5005, 0.5, 0.5]])
        mass = np.array([1.0, 0.0])
        eps = 1e-3
        phi = ewald.potential(pos, mass, eps=eps)[1]
        r = 0.0005
        plummer = -1.0 / np.sqrt(r**2 + eps**2)
        assert phi == pytest.approx(plummer + EWALD_SELF, abs=0.01)


class TestTotalEnergy:
    def test_uniform_lattice_energy(self, ewald):
        """A uniform lattice is (nearly) the mean density: its energy
        per particle approaches the pure self-energy of the sub-lattice
        spacing, and the configuration is an equilibrium."""
        g = np.arange(4) / 4.0
        pos = np.stack(np.meshgrid(g, g, g, indexing="ij"), -1).reshape(-1, 3)
        mass = np.full(len(pos), 1.0 / len(pos))
        # energy of a scaled lattice: U(N m^2 / L) with L_eff = 1/4
        u = ewald.total_energy(pos, mass)
        expected = 0.5 * len(pos) * (mass[0] ** 2) * EWALD_SELF * 4
        assert u == pytest.approx(expected, rel=1e-3)

    def test_clustered_more_bound_than_uniform(self, ewald, rng):
        n = 32
        mass = np.full(n, 1.0 / n)
        uniform = rng.random((n, 3))
        clustered = np.mod(0.5 + 0.02 * rng.standard_normal((n, 3)), 1.0)
        assert ewald.total_energy(clustered, mass, eps=1e-3) < ewald.total_energy(
            uniform, mass, eps=1e-3
        )
