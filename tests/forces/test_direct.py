"""Tests of the direct-summation force calculators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.forces.cutoff import S2ForceSplit
from repro.forces.direct import (
    direct_forces_cutoff,
    direct_forces_open,
    direct_forces_periodic_mi,
    direct_potential_open,
)


class TestDirectOpen:
    def test_two_body_inverse_square(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        mass = np.array([1.0, 2.0])
        acc = direct_forces_open(pos, mass)
        np.testing.assert_allclose(acc[0], [2.0, 0.0, 0.0], atol=1e-14)
        np.testing.assert_allclose(acc[1], [-1.0, 0.0, 0.0], atol=1e-14)

    def test_momentum_conservation(self, clustered_particles):
        pos, mass = clustered_particles
        acc = direct_forces_open(pos, mass, eps=1e-3)
        total = (mass[:, None] * acc).sum(axis=0)
        np.testing.assert_allclose(total, 0.0, atol=1e-13)

    def test_softening_regularizes_close_pairs(self):
        pos = np.array([[0.0, 0.0, 0.0], [1e-12, 0.0, 0.0]])
        mass = np.ones(2)
        acc = direct_forces_open(pos, mass, eps=0.01)
        assert np.all(np.isfinite(acc))
        assert np.linalg.norm(acc[0]) < 1e-12 / 0.01**3 * 1.001

    def test_self_interaction_excluded(self):
        pos = np.array([[0.5, 0.5, 0.5]])
        acc = direct_forces_open(pos, np.array([1.0]))
        np.testing.assert_array_equal(acc, 0.0)

    def test_chunking_invariance(self, uniform_particles):
        pos, mass = uniform_particles
        a1 = direct_forces_open(pos, mass, eps=1e-3, chunk=7)
        a2 = direct_forces_open(pos, mass, eps=1e-3, chunk=1024)
        np.testing.assert_allclose(a1, a2, rtol=0, atol=0)

    def test_explicit_targets(self, uniform_particles):
        pos, mass = uniform_particles
        probe = np.array([[0.1, 0.9, 0.3], [0.6, 0.2, 0.8]])
        acc = direct_forces_open(pos, mass, eps=1e-3, targets=probe)
        assert acc.shape == (2, 3)
        full = direct_forces_open(
            np.vstack([pos, probe]),
            np.concatenate([mass, [0.0, 0.0]]),
            eps=1e-3,
        )
        np.testing.assert_allclose(acc, full[-2:], atol=1e-13)

    def test_g_scaling(self, uniform_particles):
        pos, mass = uniform_particles
        a1 = direct_forces_open(pos, mass, eps=1e-3, G=1.0)
        a2 = direct_forces_open(pos, mass, eps=1e-3, G=4.5)
        np.testing.assert_allclose(a2, 4.5 * a1, rtol=1e-14)

    @given(
        hnp.arrays(
            np.float64,
            (5, 3),
            elements=st.floats(min_value=0.0, max_value=1.0, width=32),
        )
    )
    def test_property_pairwise_antisymmetry(self, pos):
        """For equal masses, the force matrix is antisymmetric, so the
        mass-weighted total momentum change is exactly zero."""
        mass = np.ones(len(pos))
        acc = direct_forces_open(pos, mass, eps=0.05)
        np.testing.assert_allclose(acc.sum(axis=0), 0.0, atol=1e-9)


class TestDirectPotential:
    def test_two_body(self):
        pos = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        mass = np.array([3.0, 5.0])
        phi = direct_potential_open(pos, mass)
        assert phi[0] == pytest.approx(-5.0 / 2.0)
        assert phi[1] == pytest.approx(-3.0 / 2.0)

    def test_energy_consistency_with_force(self):
        """Numerical gradient of the potential equals minus the force."""
        pos = np.array([[0.2, 0.3, 0.4], [0.7, 0.6, 0.5], [0.4, 0.8, 0.1]])
        mass = np.array([1.0, 2.0, 3.0])
        probe = np.array([[0.5, 0.5, 0.5]])
        h = 1e-6
        grad = np.zeros(3)
        for d in range(3):
            pp, pm = probe.copy(), probe.copy()
            pp[0, d] += h
            pm[0, d] -= h
            fp = direct_potential_open(pos, mass, targets=pp)[0]
            fm = direct_potential_open(pos, mass, targets=pm)[0]
            grad[d] = (fp - fm) / (2 * h)
        acc = direct_forces_open(pos, mass, targets=probe)[0]
        np.testing.assert_allclose(acc, -grad, rtol=1e-6)


class TestDirectPeriodicMI:
    def test_wraps_across_boundary(self):
        # particles at x=0.05 and x=0.95 are 0.1 apart through the wall
        pos = np.array([[0.05, 0.5, 0.5], [0.95, 0.5, 0.5]])
        mass = np.ones(2)
        acc = direct_forces_periodic_mi(pos, mass, box=1.0)
        # particle 0 is pulled in -x (toward the image at -0.05)
        assert acc[0, 0] < 0
        assert acc[0, 0] == pytest.approx(-1.0 / 0.1**2, rel=1e-12)

    def test_reduces_to_open_for_central_cluster(self):
        rng = np.random.default_rng(7)
        pos = 0.5 + 0.01 * rng.standard_normal((20, 3))
        mass = np.ones(20)
        a_mi = direct_forces_periodic_mi(pos, mass, box=1.0, eps=1e-4)
        a_open = direct_forces_open(pos, mass, eps=1e-4)
        np.testing.assert_allclose(a_mi, a_open, rtol=0, atol=0)


class TestDirectCutoff:
    def test_zero_beyond_rcut(self):
        split = S2ForceSplit(rcut=0.1)
        pos = np.array([[0.2, 0.5, 0.5], [0.8, 0.5, 0.5]])
        mass = np.ones(2)
        acc = direct_forces_cutoff(pos, mass, split, box=1.0)
        np.testing.assert_array_equal(acc, 0.0)

    def test_matches_plain_force_at_tiny_separation(self):
        split = S2ForceSplit(rcut=0.2)
        pos = np.array([[0.5, 0.5, 0.5], [0.501, 0.5, 0.5]])
        mass = np.ones(2)
        a_cut = direct_forces_cutoff(pos, mass, split, box=1.0, eps=1e-5)
        a_raw = direct_forces_periodic_mi(pos, mass, box=1.0, eps=1e-5)
        # g(2r/rcut) with r = 0.001, rcut=0.2 -> xi=0.01, g ~ 1 - 1.6e-6
        np.testing.assert_allclose(a_cut, a_raw, rtol=1e-5)

    def test_rejects_rcut_over_half_box(self):
        split = S2ForceSplit(rcut=0.6)
        pos = np.zeros((2, 3))
        with pytest.raises(ValueError, match="minimum image"):
            direct_forces_cutoff(pos, np.ones(2), split, box=1.0)

    def test_momentum_conservation(self, clustered_particles):
        pos, mass = clustered_particles
        split = S2ForceSplit(rcut=0.15)
        acc = direct_forces_cutoff(pos, mass, split, box=1.0, eps=1e-4)
        np.testing.assert_allclose(
            (mass[:, None] * acc).sum(axis=0), 0.0, atol=1e-10
        )
