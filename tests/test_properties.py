"""Cross-cutting property-based tests (hypothesis) on core invariants.

These complement the per-module tests with randomized structural
checks: tree bookkeeping, kernel symmetries, mesh conservation laws,
communicator algebra and decomposition partitions under arbitrary
inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomp.multisection import MultisectionDecomposition
from repro.forces.cutoff import S2ForceSplit, gp3m_cutoff, gp3m_potential_cutoff
from repro.mesh.assignment import assign_mass, interpolate_mesh
from repro.mpi.runtime import run_spmd
from repro.pp.kernel import PPKernel
from repro.tree.octree import Octree
from repro.tree.traversal import _multi_arange


def _positions(n, seed):
    return np.random.default_rng(seed).random((n, 3))


class TestMultiArange:
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 20)), max_size=8))
    def test_matches_naive(self, spans):
        lo = np.array([a for a, _ in spans], dtype=np.int64)
        hi = lo + np.array([b for _, b in spans], dtype=np.int64)
        got = _multi_arange(lo, hi)
        ref = np.concatenate(
            [np.arange(a, b) for a, b in zip(lo, hi)] or [np.empty(0, dtype=np.int64)]
        )
        np.testing.assert_array_equal(got, ref)


class TestOctreeProperties:
    @given(st.integers(2, 200), st.integers(1, 16), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_structure_and_moments(self, n, leaf, seed):
        pos = _positions(n, seed)
        mass = np.random.default_rng(seed + 1).random(n) + 0.1
        tree = Octree(pos, mass, leaf_size=leaf)
        tree.validate()
        assert tree.node_mass[0] == pytest.approx(mass.sum(), rel=1e-12)
        # every particle is inside the root cube and counted once
        assert tree.node_hi[0] - tree.node_lo[0] == n

    @given(st.integers(2, 100), st.integers(1, 50), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_groups_partition(self, n, gsize, seed):
        pos = _positions(n, seed)
        tree = Octree(pos, np.ones(n), leaf_size=4)
        groups = tree.group_nodes(gsize)
        spans = sorted(
            (int(tree.node_lo[g]), int(tree.node_hi[g])) for g in groups
        )
        assert spans[0][0] == 0 and spans[-1][1] == n
        assert all(a[1] == b[0] for a, b in zip(spans[:-1], spans[1:]))


class TestKernelProperties:
    @given(st.integers(2, 24), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_newton_third_law(self, n, seed):
        """Equal masses: sum of forces vanishes (pairwise symmetry)."""
        pos = _positions(n, seed)
        mass = np.ones(n)
        kern = PPKernel(eps=0.05)
        acc = kern.accumulate(pos, pos, mass)
        np.testing.assert_allclose(acc.sum(axis=0), 0.0, atol=1e-8 * n)

    @given(st.floats(0.01, 0.4), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_cutoff_locality(self, rcut, seed):
        """No force reaches beyond the cutoff radius, ever."""
        rng = np.random.default_rng(seed)
        split = S2ForceSplit(rcut)
        kern = PPKernel(split=split, box=1.0)
        tgt = rng.random((4, 3))
        # sources placed strictly farther than rcut (minimum image)
        src = np.mod(tgt[0] + rcut * 1.5 + 0.05 * rng.random((4, 3)), 1.0)
        from repro.utils.periodic import minimum_image

        d = np.sqrt(
            (minimum_image(src[None] - tgt[:, None]) ** 2).sum(-1)
        )
        acc = kern.accumulate(tgt, src, np.ones(4))
        beyond = np.all(d > rcut, axis=1)
        np.testing.assert_array_equal(acc[beyond], 0.0)


class TestCutoffFunctionProperties:
    @given(st.floats(0.0, 1.99), st.floats(0.001, 1.0))
    def test_force_potential_inequality(self, xi, scale):
        """0 <= g <= h... actually h >= g * xi/2? Just bounds: both in
        [0, 1], and h(xi) >= g(xi) * (1 - xi/2) (potential decays more
        slowly than force)."""
        g = float(gp3m_cutoff(xi))
        h = float(gp3m_potential_cutoff(xi))
        assert 0.0 <= g <= 1.0 + 1e-12
        assert 0.0 <= h <= 1.0 + 1e-12

    @given(st.floats(0.0, 3.0), st.floats(0.0, 3.0))
    def test_monotone_pairs(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert float(gp3m_cutoff(hi)) <= float(gp3m_cutoff(lo)) + 1e-12
        assert float(gp3m_potential_cutoff(hi)) <= float(
            gp3m_potential_cutoff(lo)
        ) + 1e-12


class TestMeshProperties:
    @given(
        st.integers(1, 60),
        st.sampled_from(["ngp", "cic", "tsc"]),
        st.integers(0, 10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_mass_conservation(self, n, scheme, seed):
        pos = _positions(n, seed)
        mass = np.random.default_rng(seed).random(n)
        mesh = assign_mass(pos, mass, 8, scheme=scheme)
        assert mesh.sum() == pytest.approx(mass.sum(), rel=1e-9)

    @given(st.integers(1, 30), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_interpolation_partition_of_unity(self, n, seed):
        """Interpolating the constant-1 field returns exactly 1."""
        pos = _positions(n, seed)
        ones = np.ones((8, 8, 8))
        for scheme in ("ngp", "cic", "tsc"):
            vals = interpolate_mesh(ones, pos, scheme=scheme)
            np.testing.assert_allclose(vals, 1.0, rtol=1e-12)


class TestDecompositionProperties:
    @given(
        st.integers(1, 4),
        st.integers(1, 3),
        st.integers(1, 3),
        st.integers(10, 400),
        st.integers(0, 10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_owner_partition(self, dx, dy, dz, n, seed):
        pos = _positions(n, seed)
        d = MultisectionDecomposition.from_samples(pos, (dx, dy, dz))
        owners = d.owner_of(pos)
        for r in range(d.n_domains):
            lo, hi = d.domain_bounds(r)
            sel = owners == r
            assert np.all((pos[sel] >= lo) & (pos[sel] < hi))
        assert d.domain_volumes().sum() == pytest.approx(1.0, rel=1e-9)


class TestValidationProperties:
    """Injected corruptions fire exactly the right checker — and clean
    inputs never fire any."""

    @given(
        st.integers(1, 200),
        st.integers(0, 10**6),
        st.sampled_from([np.nan, np.inf, -np.inf]),
        st.integers(0, 20),
        st.integers(0, 50),
    )
    @settings(max_examples=20, deadline=None)
    def test_nan_injection_fires_finite_check(self, n, seed, bad, step, rank):
        from repro.validate import check_finite

        arr = _positions(n, seed)
        assert check_finite("pos", arr, stage="decomp/exchange") is None
        idx = seed % n
        arr[idx, seed % 3] = bad
        v = check_finite(
            "pos", arr, stage="decomp/exchange", step=step, rank=rank
        )
        assert v is not None
        assert v.check == "finite_fields"
        assert v.stage == "decomp/exchange" and v.step == step and v.rank == rank
        assert v.stats["first_bad_index"] == idx * 3 + seed % 3

    @given(st.integers(0, 10**6), st.integers(-5, 5), st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_particle_loss_fires_count_check(self, n, delta, step):
        from repro.validate import check_particle_count

        v = check_particle_count(
            n, n + delta, stage="decomp/exchange", step=step, rank=0
        )
        if delta == 0:
            assert v is None
        else:
            assert v is not None and v.check == "particle_count"
            assert v.step == step and v.rank == 0

    @given(
        st.floats(0.1, 100.0),
        st.floats(-0.5, 0.5),
        st.floats(1e-6, 1e-2),
    )
    @settings(max_examples=25, deadline=None)
    def test_mass_skew_fires_conservation_check(self, total, skew, tol):
        from repro.validate import check_mesh_mass

        v = check_mesh_mass(
            total * (1.0 + skew), total, stage="mesh/assignment", rel_tol=tol
        )
        # guard band on both sides of the threshold: the check scales
        # the error by max(|mesh|, |particle|) — the *skewed* total —
        # so a positive skew fires only above tol/(1-tol), and floats
        # round at the boundary (tol <= 1e-2 keeps 2% conservative)
        if abs(skew) > tol * 1.02:
            assert v is not None and v.check == "mass_conservation"
            assert v.stage == "mesh/assignment"
        elif abs(skew) < tol * 0.5:
            assert v is None

    @given(st.integers(2, 64), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_clean_octree_never_fires(self, n, seed):
        from repro.validate import check_octree

        pos = _positions(n, seed)
        mass = np.random.default_rng(seed + 1).random(n) + 0.1
        assert check_octree(Octree(pos, mass)) is None

    @given(st.integers(4, 64), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_corrupted_octree_mass_always_caught(self, n, seed):
        from repro.validate import check_octree

        pos = _positions(n, seed)
        tree = Octree(pos, np.ones(n))
        tree.node_mass[0] += 0.5 * n  # skew far beyond tolerance
        v = check_octree(tree, step=3, rank=1)
        assert v is not None and v.check == "octree_moments"
        assert v.step == 3 and v.rank == 1


class TestCommProperties:
    @given(st.integers(1, 6), st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_allreduce_matches_local_sum(self, size, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 100, size=size)

        def fn(comm):
            return comm.allreduce(int(values[comm.rank]), op="sum")

        out = run_spmd(size, fn)
        assert all(o == values.sum() for o in out)

    @given(st.integers(2, 5), st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_alltoall_is_transpose(self, size, seed):
        def fn(comm):
            sends = [(comm.rank, d) for d in range(comm.size)]
            return comm.alltoall(sends)

        out = run_spmd(size, fn)
        for r, got in enumerate(out):
            assert got == [(s, r) for s in range(size)]
