"""Tests of the leapfrog integrators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cosmology.params import EINSTEIN_DE_SITTER
from repro.integrate.leapfrog import LeapfrogIntegrator, TwoLevelKDK
from repro.integrate.stepper import CosmoStepper, StaticStepper


def _kepler_force(mu=1.0):
    """Central 1/r^2 attraction toward (0.5, 0.5, 0.5) — not periodic;
    amplitudes stay tiny so box wrapping never triggers."""

    def force(pos):
        d = pos - 0.5
        r = np.linalg.norm(d, axis=1, keepdims=True)
        return -mu * d / r**3

    return force


def _circular_orbit_ic(radius=0.01, mu=1.0):
    pos = np.array([[0.5 + radius, 0.5, 0.5]])
    v = np.sqrt(mu / radius)
    mom = np.array([[0.0, v, 0.0]])
    return pos, mom


class TestStaticLeapfrog:
    def test_circular_orbit_radius_conserved(self):
        mu, radius = 1.0, 0.01
        pos, mom = _circular_orbit_ic(radius, mu)
        integ = LeapfrogIntegrator(_kepler_force(mu), StaticStepper())
        period = 2 * np.pi * np.sqrt(radius**3 / mu)
        n = 200
        for i in range(n):
            pos, mom = integ.step(pos, mom, i * period / n, (i + 1) * period / n)
        r = np.linalg.norm(pos[0] - 0.5)
        assert r == pytest.approx(radius, rel=1e-3)

    def test_energy_conservation_over_many_orbits(self):
        mu, radius = 1.0, 0.01
        pos, mom = _circular_orbit_ic(radius, mu)
        integ = LeapfrogIntegrator(_kepler_force(mu), StaticStepper())

        def energy(p, m):
            r = np.linalg.norm(p[0] - 0.5)
            return 0.5 * np.sum(m**2) - mu / r

        e0 = energy(pos, mom)
        period = 2 * np.pi * np.sqrt(radius**3 / mu)
        dt = period / 100
        for i in range(500):  # five orbits
            pos, mom = integ.step(pos, mom, i * dt, (i + 1) * dt)
        assert energy(pos, mom) == pytest.approx(e0, rel=1e-4)

    def test_time_reversibility(self):
        mu = 1.0
        pos0, mom0 = _circular_orbit_ic(0.01, mu)
        integ = LeapfrogIntegrator(_kepler_force(mu), StaticStepper())
        pos, mom = pos0.copy(), mom0.copy()
        for i in range(10):
            pos, mom = integ.step(pos, mom, i * 1e-3, (i + 1) * 1e-3)
        # reverse momenta and integrate back
        mom = -mom
        integ.reset_cache()
        for i in range(10):
            pos, mom = integ.step(pos, mom, i * 1e-3, (i + 1) * 1e-3)
        np.testing.assert_allclose(pos, pos0, atol=1e-12)
        np.testing.assert_allclose(-mom, mom0, atol=1e-12)

    def test_second_order_convergence(self):
        """The leapfrog phase error after one orbit is O(dt^2):
        halving the step reduces it by ~4x."""
        mu, radius = 1.0, 0.01
        period = 2 * np.pi * np.sqrt(radius**3 / mu)

        def final_phase_error(n):
            pos, mom = _circular_orbit_ic(radius, mu)
            integ = LeapfrogIntegrator(_kepler_force(mu), StaticStepper())
            for i in range(n):
                pos, mom = integ.step(
                    pos, mom, i * period / n, (i + 1) * period / n
                )
            d = pos[0] - 0.5
            return abs(np.arctan2(d[1], d[0]))

        e1 = final_phase_error(50)
        e2 = final_phase_error(100)
        assert e1 / e2 == pytest.approx(4.0, rel=0.15)

    def test_force_cache_reused(self):
        calls = []

        def force(pos):
            calls.append(1)
            return np.zeros_like(pos)

        integ = LeapfrogIntegrator(force, StaticStepper())
        pos = np.array([[0.5, 0.5, 0.5]])
        mom = np.zeros((1, 3))
        pos, mom = integ.step(pos, mom, 0.0, 0.1)
        pos, mom = integ.step(pos, mom, 0.1, 0.2)
        # 2 evaluations first step (start+end), 1 for the second
        assert len(calls) == 3


class TestTwoLevelKDK:
    def test_matches_single_level_when_pm_zero(self):
        mu = 1.0
        pos0, mom0 = _circular_orbit_ic(0.01, mu)
        zero = lambda p: np.zeros_like(p)
        two = TwoLevelKDK(zero, _kepler_force(mu), StaticStepper(), n_sub=1)
        one = LeapfrogIntegrator(_kepler_force(mu), StaticStepper())
        p2, m2 = pos0.copy(), mom0.copy()
        p1, m1 = pos0.copy(), mom0.copy()
        for i in range(20):
            p2, m2 = two.step(p2, m2, i * 1e-3, (i + 1) * 1e-3)
            p1, m1 = one.step(p1, m1, i * 1e-3, (i + 1) * 1e-3)
        np.testing.assert_allclose(p2, p1, atol=1e-13)
        np.testing.assert_allclose(m2, m1, atol=1e-13)

    def test_subcycles_improve_fast_force_accuracy(self):
        """With the whole force on the inner level, more subcycles act
        like smaller steps for it."""
        mu, radius = 1.0, 0.01
        period = 2 * np.pi * np.sqrt(radius**3 / mu)
        zero = lambda p: np.zeros_like(p)

        def error(n_sub):
            pos, mom = _circular_orbit_ic(radius, mu)
            kdk = TwoLevelKDK(zero, _kepler_force(mu), StaticStepper(), n_sub=n_sub)
            n = 30
            for i in range(n):
                pos, mom = kdk.step(pos, mom, i * period / n, (i + 1) * period / n)
            return abs(np.linalg.norm(pos[0] - 0.5) - radius)

        assert error(4) < error(1)

    def test_paper_step_structure_force_counts(self):
        """Per step: 1 new PM evaluation and n_sub new PP evaluations
        (after the first step's bootstrap)."""
        pm_calls, pp_calls = [], []

        def pm(p):
            pm_calls.append(1)
            return np.zeros_like(p)

        def pp(p):
            pp_calls.append(1)
            return np.zeros_like(p)

        kdk = TwoLevelKDK(pm, pp, StaticStepper(), n_sub=2)
        pos = np.array([[0.5, 0.5, 0.5]])
        mom = np.zeros((1, 3))
        pos, mom = kdk.step(pos, mom, 0.0, 0.1)
        first_pm, first_pp = len(pm_calls), len(pp_calls)
        pos, mom = kdk.step(pos, mom, 0.1, 0.2)
        assert len(pm_calls) - first_pm == 1
        assert len(pp_calls) - first_pp == 2

    def test_invalid_nsub(self):
        with pytest.raises(ValueError):
            TwoLevelKDK(lambda p: p, lambda p: p, StaticStepper(), n_sub=0)


class TestCosmoStepper:
    def test_eds_coefficients_positive_decreasing(self):
        st = CosmoStepper(EINSTEIN_DE_SITTER)
        k1 = st.kick_coeff(0.01, 0.02)
        k2 = st.kick_coeff(0.11, 0.12)
        assert k1 > k2 > 0  # same da costs more time early

    def test_additivity(self):
        st = CosmoStepper(EINSTEIN_DE_SITTER)
        full = st.drift_coeff(0.01, 0.03)
        split = st.drift_coeff(0.01, 0.02) + st.drift_coeff(0.02, 0.03)
        assert full == pytest.approx(split, rel=1e-10)

    def test_flags(self):
        assert CosmoStepper(EINSTEIN_DE_SITTER).cosmological
        assert not StaticStepper().cosmological
