"""Tests of the time-step criteria and the adaptive controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cosmology.expansion import Expansion
from repro.cosmology.params import EINSTEIN_DE_SITTER
from repro.integrate.timestep import (
    StepController,
    acceleration_timestep,
    suggest_scale_factor_step,
)


class TestAccelerationTimestep:
    def test_standard_formula(self):
        acc = np.array([[3.0, 0.0, 4.0]])  # |a| = 5
        dt = acceleration_timestep(acc, eps=0.01, eta=0.025)
        assert dt == pytest.approx(0.025 * np.sqrt(0.01 / 5.0))

    def test_max_acceleration_governs(self):
        acc = np.array([[1.0, 0, 0], [100.0, 0, 0]])
        dt = acceleration_timestep(acc, eps=0.01)
        assert dt == pytest.approx(acceleration_timestep(acc[1:], eps=0.01))

    def test_zero_acceleration_unbounded(self):
        assert acceleration_timestep(np.zeros((3, 3)), eps=0.01) == np.inf
        assert acceleration_timestep(np.zeros((0, 3)), eps=0.01) == np.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            acceleration_timestep(np.ones((1, 3)), eps=0.0)
        with pytest.raises(ValueError):
            acceleration_timestep(np.ones((1, 3)), eps=0.1, eta=0.0)

    def test_softening_scaling(self):
        acc = np.ones((1, 3))
        dt1 = acceleration_timestep(acc, eps=0.01)
        dt2 = acceleration_timestep(acc, eps=0.04)
        assert dt2 == pytest.approx(2 * dt1)


class TestScaleFactorStep:
    @pytest.fixture
    def expansion(self):
        return Expansion(EINSTEIN_DE_SITTER)

    def test_dloga_cap_for_cold_systems(self, expansion):
        """Tiny accelerations: the expansion cap governs."""
        da = suggest_scale_factor_step(
            0.1, 1e-8 * np.ones((2, 3)), eps=0.01, expansion=expansion,
            max_dloga=0.05,
        )
        assert da == pytest.approx(0.1 * 0.05)

    def test_acceleration_cap_for_hot_systems(self, expansion):
        """Violent accelerations: the dynamical criterion governs."""
        da = suggest_scale_factor_step(
            0.1, 1e8 * np.ones((2, 3)), eps=0.01, expansion=expansion,
            max_dloga=0.05,
        )
        assert da < 0.1 * 0.05

    def test_validation(self, expansion):
        with pytest.raises(ValueError):
            suggest_scale_factor_step(0.0, np.ones((1, 3)), 0.01, expansion)


class TestStepController:
    @pytest.fixture
    def controller(self):
        return StepController(
            Expansion(EINSTEIN_DE_SITTER), eps=0.01, max_dloga=0.05
        )

    def test_steps_toward_end(self, controller):
        a = 0.01
        acc = np.zeros((2, 3))
        seen = []
        for _ in range(200):
            a = controller.next_step(a, acc, a_end=0.1)
            seen.append(a)
            if a >= 0.1:
                break
        assert seen[-1] == pytest.approx(0.1)
        assert all(b > a for a, b in zip(seen[:-2], seen[1:-1]))

    def test_growth_hysteresis(self, controller):
        """After a violent phase the step recovers gradually."""
        a = 0.1
        hot = 1e9 * np.ones((1, 3))
        cold = np.zeros((1, 3))
        a1 = controller.next_step(a, hot, a_end=1.0)
        small = a1 - a
        a2 = controller.next_step(a1, cold, a_end=1.0)
        assert (a2 - a1) <= 1.3 * small * 1.0001

    def test_shrink_is_immediate(self, controller):
        a = 0.1
        a1 = controller.next_step(a, np.zeros((1, 3)), a_end=1.0)
        a2 = controller.next_step(a1, 1e9 * np.ones((1, 3)), a_end=1.0)
        assert (a2 - a1) < (a1 - a)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepController(Expansion(EINSTEIN_DE_SITTER), eps=0.01, growth=1.0)
