"""Tests of the command-line runner."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main, run_from_config
from repro.sim.io import load_snapshot


def _quiet(*args, **kwargs):
    pass


class TestRunFromConfig:
    def test_static_run(self):
        summary = run_from_config(
            {
                "kind": "static",
                "n_particles": 64,
                "mesh_size": 16,
                "end": 0.05,
                "n_steps": 2,
            },
            log=_quiet,
        )
        assert summary["steps"] == 2
        assert summary["kind"] == "static"
        assert summary["interactions_last_pp"] > 0

    def test_cosmological_run_with_snapshots(self, tmp_path):
        summary = run_from_config(
            {
                "kind": "cosmological",
                "n_per_dim": 4,
                "mesh_size": 8,
                "start": 0.01,
                "end": 0.02,
                "n_steps": 3,
                "snapshots": [0.01, 0.02],
                "output_dir": str(tmp_path),
            },
            log=_quiet,
        )
        assert len(summary["snapshots"]) == 2
        pos, mom, mass, hdr = load_snapshot(summary["snapshots"][-1])
        assert hdr.cosmological
        assert hdr.n_particles == 64
        assert hdr.time == pytest.approx(0.02)
        assert np.all((pos >= 0) & (pos < 1))

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config"):
            run_from_config({"particles": 10}, log=_quiet)

    def test_snapshot_requires_output_dir(self):
        with pytest.raises(ValueError, match="output_dir"):
            run_from_config(
                {"kind": "static", "snapshots": [0.1]}, log=_quiet
            )

    def test_snapshot_epoch_validated(self, tmp_path):
        with pytest.raises(ValueError, match="outside"):
            run_from_config(
                {
                    "kind": "static",
                    "end": 0.1,
                    "snapshots": [0.5],
                    "output_dir": str(tmp_path),
                },
                log=_quiet,
            )

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="kind"):
            run_from_config({"kind": "magnetohydro"}, log=_quiet)

    def test_2lpt_initial_conditions(self):
        summary = run_from_config(
            {
                "kind": "cosmological",
                "n_per_dim": 4,
                "mesh_size": 8,
                "start": 0.01,
                "end": 0.015,
                "n_steps": 1,
                "lpt_order": 2,
            },
            log=_quiet,
        )
        assert summary["steps"] == 1

    def test_invalid_lpt_order(self):
        with pytest.raises(ValueError, match="lpt_order"):
            run_from_config(
                {"kind": "cosmological", "lpt_order": 3, "n_steps": 1},
                log=_quiet,
            )


class TestCheckpointResumeFlags:
    _CFG = {
        "kind": "static",
        "n_particles": 48,
        "mesh_size": 8,
        "end": 0.2,
        "n_steps": 4,
        "seed": 9,
    }

    def test_checkpoint_every_requires_directory(self):
        with pytest.raises(ValueError, match="checkpoint"):
            run_from_config(dict(self._CFG), log=_quiet, checkpoint_every=1)

    def test_checkpoint_then_resume_bit_for_bit(self, tmp_path):
        from repro.sim.serial import SerialSimulation
        from repro.cli import _DEFAULTS, _build_config

        straight = run_from_config(dict(self._CFG), log=_quiet)

        # build the interrupted state: first 2 of 4 steps, checkpointed
        cfg = _build_config({**_DEFAULTS, **self._CFG})
        rng = np.random.default_rng(self._CFG["seed"])
        n = self._CFG["n_particles"]
        pos = rng.random((n, 3))
        sim = SerialSimulation(cfg, pos, np.zeros((n, 3)), np.full(n, 1.0 / n))
        edges = np.linspace(0.0, 0.2, 5)
        for i in range(2):
            sim.step(float(edges[i]), float(edges[i + 1]))
        ckpt = tmp_path / "mid.npz"
        sim.save_checkpoint(ckpt, float(edges[2]))

        resumed = run_from_config(
            dict(self._CFG), log=_quiet, resume=ckpt,
            checkpoint_every=2, checkpoint_dir=tmp_path,
        )
        assert resumed["resumed_from"] == str(ckpt)
        assert resumed["steps"] == 4
        assert resumed["checkpoint"] == str(tmp_path / "checkpoint.npz")
        # final rolling checkpoint equals the straight run's state
        _, _, _, hdr = load_snapshot(tmp_path / "checkpoint.npz")
        assert hdr.step == 4
        assert straight["steps"] == 4

    def test_resume_past_schedule_rejected(self, tmp_path):
        from repro.sim.serial import SerialSimulation
        from repro.cli import _DEFAULTS, _build_config

        cfg = _build_config({**_DEFAULTS, **self._CFG})
        sim = SerialSimulation(
            cfg, np.random.default_rng(0).random((48, 3)),
            np.zeros((48, 3)), np.full(48, 1.0 / 48),
        )
        sim.steps_taken = 99
        sim.save_checkpoint(tmp_path / "late.npz", 0.2)
        with pytest.raises(ValueError, match="step 99"):
            run_from_config(
                dict(self._CFG), log=_quiet, resume=tmp_path / "late.npz"
            )

    def test_main_passes_flags_through(self, tmp_path, capsys):
        cfg_path = tmp_path / "run.json"
        cfg_path.write_text(json.dumps(self._CFG))
        assert main([
            "run", str(cfg_path),
            "--checkpoint-every", "2",
            "--checkpoint-dir", str(tmp_path / "ck"),
        ]) == 0
        assert (tmp_path / "ck" / "checkpoint.npz").exists()
        assert main([
            "run", str(cfg_path),
            "--resume", str(tmp_path / "ck" / "checkpoint.npz"),
        ]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out


class TestMain:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "4.45 Pflops" in out

    def test_run_with_summary_file(self, tmp_path, capsys):
        cfg = tmp_path / "run.json"
        cfg.write_text(
            json.dumps(
                {
                    "kind": "static",
                    "n_particles": 32,
                    "mesh_size": 16,
                    "end": 0.02,
                    "n_steps": 1,
                }
            )
        )
        summary_path = tmp_path / "summary.json"
        assert main(["run", str(cfg), "--summary", str(summary_path)]) == 0
        summary = json.loads(summary_path.read_text())
        assert summary["steps"] == 1


class TestSdcFlags:
    _CFG = {
        "kind": "static",
        "n_particles": 48,
        "mesh_size": 8,
        "end": 0.2,
        "n_steps": 2,
        "seed": 9,
    }

    def test_build_config_plumbs_sdc_keys(self):
        from repro.cli import _DEFAULTS, _build_config

        cfg = _build_config({
            **_DEFAULTS, **self._CFG,
            "sdc_policy": "heal", "sdc_audit_every": 3,
            "sdc_spot_check_groups": 7, "sdc_keep_last": 2,
        })
        assert cfg.sdc.policy == "heal"
        assert cfg.sdc.audit_every == 3
        assert cfg.sdc.spot_check_groups == 7
        assert cfg.sdc.keep_last == 2

    def test_invalid_sdc_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            run_from_config(
                {**self._CFG, "sdc_policy": "retry"}, log=_quiet
            )

    def test_main_sdc_flags_override_config(self, tmp_path):
        cfg_path = tmp_path / "run.json"
        cfg_path.write_text(json.dumps(self._CFG))
        assert main([
            "run", str(cfg_path),
            "--sdc-policy", "warn",
            "--sdc-audit-every", "2",
        ]) == 0

    def test_build_config_plumbs_health_keys(self):
        from repro.cli import _DEFAULTS, _build_config

        cfg = _build_config({
            **_DEFAULTS, **self._CFG,
            "health_policy": "degrade",
            "straggler_factor": 4.5,
            "straggler_patience": 5,
        })
        assert cfg.health.policy == "degrade"
        assert cfg.health.straggler_factor == 4.5
        assert cfg.health.straggler_patience == 5

    def test_invalid_health_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            run_from_config(
                {**self._CFG, "health_policy": "panic"}, log=_quiet
            )

    def test_main_health_flags_override_config(self, tmp_path):
        cfg_path = tmp_path / "run.json"
        cfg_path.write_text(json.dumps(self._CFG))
        assert main([
            "run", str(cfg_path),
            "--health-policy", "monitor",
            "--straggler-factor", "4.0",
            "--straggler-patience", "2",
        ]) == 0


class TestCkptScrubCommand:
    def _make_set(self, root, steps=(0, 1, 2)):
        from repro.sim import checkpoint as _ckpt

        for step in steps:
            step_dir = root / _ckpt.step_dirname(step)
            step_dir.mkdir(parents=True)
            name = _ckpt.rank_filename(0, 1)
            digest = _ckpt.write_rank_file(
                step_dir / name,
                {"pos": np.full((4, 3), float(step))},
                {"rank": 0},
            )
            _ckpt.write_manifest(step_dir, {
                "version": _ckpt.CHECKPOINT_VERSION,
                "n_ranks": 1,
                "steps_taken": step,
                "schedule": {"next_step": step},
                "config_hash": "test",
                "files": [{
                    "rank": 0, "name": name,
                    "sha256": digest, "n_particles": 4,
                }],
            })
            _ckpt.update_latest(root, step_dir.name)
        return root

    def test_scrub_clean_set_exits_zero(self, tmp_path, capsys):
        self._make_set(tmp_path)
        assert main(["ckpt", "scrub", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 3
        assert "all clean" in out

    def test_scrub_rotted_epoch_exits_nonzero(self, tmp_path, capsys):
        from repro.mpi.faults import flip_file_bits
        from repro.sim import checkpoint as _ckpt

        self._make_set(tmp_path)
        flip_file_bits(
            tmp_path / "step_00001" / _ckpt.rank_filename(0, 1),
            nbits=1, seed=4,
        )
        assert main(["ckpt", "scrub", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "INVALID step_00001" in captured.err
        assert "1 failed" in captured.out

    def test_scrub_empty_dir_exits_nonzero(self, tmp_path, capsys):
        assert main(["ckpt", "scrub", str(tmp_path)]) == 1
        assert "no checkpoints" in capsys.readouterr().err
