"""Tests of the Validator policy engine and drift monitors."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.config import ValidationConfig
from repro.mpi.runtime import run_spmd
from repro.validate import (
    EnergyDriftMonitor,
    InvariantViolation,
    InvariantWarning,
    MomentumDriftMonitor,
    Validator,
)


def _violation(check="finite_fields", **kw):
    return InvariantViolation("boom", check=check, stage="s", **kw)


class TestValidationConfig:
    def test_defaults_off(self):
        cfg = ValidationConfig()
        assert cfg.policy == "off" and not cfg.enabled

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            ValidationConfig(policy="explode")
        with pytest.raises(ValueError):
            ValidationConfig(overrides={"finite_fields": "explode"})
        with pytest.raises(ValueError):
            ValidationConfig(interval=0)
        with pytest.raises(ValueError):
            ValidationConfig(energy_tol=-1.0)

    def test_overrides_enable(self):
        cfg = ValidationConfig(policy="off", overrides={"finite_fields": "warn"})
        assert cfg.enabled

    def test_round_trips_through_dict(self):
        from repro.config import SimulationConfig

        cfg = SimulationConfig(
            validation=ValidationConfig(
                policy="warn", interval=3, overrides={"energy_drift": "off"}
            )
        )
        back = SimulationConfig.from_dict(cfg.to_dict())
        assert back.validation == cfg.validation

    def test_excluded_from_config_hash(self):
        from repro.config import SimulationConfig

        a = SimulationConfig()
        b = SimulationConfig(validation=ValidationConfig(policy="abort"))
        assert a.config_hash() == b.config_hash()


class TestGating:
    def test_off_never_active(self):
        v = Validator(ValidationConfig())
        assert not v.enabled
        assert not v.active(0)
        assert not v.check_enabled("finite_fields", 0)

    def test_interval_sampling(self):
        v = Validator(ValidationConfig(policy="abort", interval=3))
        assert v.active(0) and v.active(3)
        assert not v.active(1) and not v.active(2)

    def test_begin_step_default(self):
        v = Validator(ValidationConfig(policy="abort", interval=2))
        v.begin_step(1)
        assert not v.active()
        v.begin_step(2)
        assert v.active()

    def test_per_check_override(self):
        v = Validator(
            ValidationConfig(policy="abort", overrides={"energy_drift": "warn"})
        )
        assert v.policy_for("finite_fields") == "abort"
        assert v.policy_for("energy_drift") == "warn"


class TestSerialHandling:
    def test_none_is_noop(self):
        Validator(ValidationConfig(policy="abort")).handle(None)

    def test_warn_emits_warning(self):
        v = Validator(ValidationConfig(policy="warn"))
        with pytest.warns(InvariantWarning, match="boom"):
            v.handle(_violation())

    def test_abort_raises(self):
        v = Validator(ValidationConfig(policy="abort"))
        with pytest.raises(InvariantViolation):
            v.handle(_violation())

    def test_override_off_suppresses(self):
        v = Validator(
            ValidationConfig(policy="abort", overrides={"finite_fields": "off"})
        )
        v.handle(_violation())  # no raise

    def test_dump_invokes_hook_and_raises(self):
        seen = []

        def dump(violation):
            seen.append(violation)
            return "/tmp/dump"

        v = Validator(ValidationConfig(policy="dump"), dump_fn=dump)
        with pytest.raises(InvariantViolation) as exc:
            v.handle(_violation())
        assert seen and exc.value.dump_path == "/tmp/dump"


class TestCollectiveHandling:
    def test_all_clean_no_raise(self):
        def spmd(comm):
            v = Validator(ValidationConfig(policy="abort"), rank=comm.rank)
            v.handle_collective(comm, None)
            return True

        assert all(run_spmd(2, spmd))

    def test_one_rank_detects_all_raise(self):
        def spmd(comm):
            v = Validator(ValidationConfig(policy="abort"), rank=comm.rank)
            local = _violation(step=1, rank=comm.rank) if comm.rank == 1 else None
            try:
                v.handle_collective(comm, local)
            except InvariantViolation as e:
                return (e.check, e.rank)  # origin metadata everywhere
            return None

        results = run_spmd(2, spmd)
        assert results == [("finite_fields", 1), ("finite_fields", 1)]

    def test_dump_hook_runs_on_every_rank(self):
        def spmd(comm):
            calls = []
            v = Validator(
                ValidationConfig(policy="dump"),
                rank=comm.rank,
                dump_fn=lambda viol: calls.append(viol) or f"d{comm.rank}",
            )
            local = _violation() if comm.rank == 0 else None
            with pytest.raises(InvariantViolation) as exc:
                v.handle_collective(comm, local)
            return len(calls), exc.value.dump_path

        assert run_spmd(2, spmd) == [(1, "d0"), (1, "d1")]

    def test_warn_policy_never_raises(self):
        # catch_warnings is process-global, so under threaded SPMD we
        # only assert the contract that matters: warn never aborts
        def spmd(comm):
            v = Validator(ValidationConfig(policy="warn"), rank=comm.rank)
            local = _violation() if comm.rank == 0 else None
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                v.handle_collective(comm, local)
            return True

        assert run_spmd(2, spmd) == [True, True]


class TestMonitors:
    def test_energy_fires_beyond_tolerance(self):
        mon = EnergyDriftMonitor(tol=0.1)
        assert mon.update(-1.0, step=0) is None
        assert mon.update(-1.05, step=1) is None
        v = mon.update(-2.0, step=2)
        assert v is not None and v.check == "energy_drift"
        assert v.stats["e0"] == -1.0

    def test_energy_nonfinite(self):
        mon = EnergyDriftMonitor(tol=0.1)
        assert mon.update(np.nan, step=0) is not None

    def test_momentum_drift(self):
        mon = MomentumDriftMonitor(tol=0.01)
        p0 = np.array([0.0, 0.0, 0.0])
        assert mon.update(p0, 1.0, step=0) is None
        assert mon.update(p0 + 1e-4, 1.0, step=1) is None
        v = mon.update(p0 + 0.5, 1.0, step=2)
        assert v is not None and v.check == "momentum_drift"

    def test_layzer_irvine_clean_eds(self):
        # analytic EdS check: for K = C/a (cold, decaying peculiar
        # velocities, negligible W) the residual is not zero, so use
        # the trivially conserved case instead: K = 0, W_c = const
        # => a(K + W) = W_c constant, int K da = 0.
        from repro.validate import LayzerIrvineMonitor

        mon = LayzerIrvineMonitor(tol=0.05)
        for i, a in enumerate(np.linspace(0.1, 0.5, 5)):
            assert mon.update(a, 0.0, -2.0, step=i) is None

    def test_layzer_irvine_trips_on_broken_integration(self):
        from repro.validate import LayzerIrvineMonitor

        mon = LayzerIrvineMonitor(tol=0.05)
        assert mon.update(0.1, 1.0, -0.2, step=0) is None
        # kinetic energy exploding with no compensating work breaks
        # the energy equation immediately
        v = mon.update(0.2, 50.0, -0.2, step=1)
        assert v is not None and v.check == "energy_drift"
        assert "Layzer-Irvine" in str(v)

    def test_layzer_irvine_nonfinite(self):
        from repro.validate import LayzerIrvineMonitor

        mon = LayzerIrvineMonitor(tol=0.05)
        v = mon.update(0.1, np.nan, -1.0, step=0)
        assert v is not None and v.check == "energy_drift"

    def test_rejects_nonpositive_tolerance(self):
        from repro.validate import LayzerIrvineMonitor

        with pytest.raises(ValueError):
            EnergyDriftMonitor(0.0)
        with pytest.raises(ValueError):
            MomentumDriftMonitor(-0.1)
        with pytest.raises(ValueError):
            LayzerIrvineMonitor(0.0)
