"""Unit tests of the composable invariant checkers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomp.multisection import MultisectionDecomposition
from repro.tree.octree import Octree
from repro.validate import (
    InvariantViolation,
    array_stats,
    check_domain_containment,
    check_domain_partition,
    check_finite,
    check_in_box,
    check_mesh_mass,
    check_momentum,
    check_octree,
    check_particle_count,
    check_positive,
    first_violation,
)


class TestArrayStats:
    def test_counts_and_extremes(self):
        arr = np.array([1.0, np.nan, -3.0, np.inf, 2.0])
        s = array_stats(arr, "x")
        assert s["n_nan"] == 1 and s["n_inf"] == 1
        assert s["first_bad_index"] == 1
        assert s["min"] == -3.0 and s["max"] == 2.0

    def test_clean_array(self):
        s = array_stats(np.arange(4.0), "x")
        assert s["n_nan"] == 0 and s["n_inf"] == 0


class TestViolation:
    def test_message_carries_context(self):
        v = InvariantViolation(
            "boom", check="finite_fields", stage="decomp/exchange",
            step=3, rank=1,
        )
        msg = str(v)
        assert "finite_fields" in msg and "decomp/exchange" in msg
        assert "step 3" in msg and "rank 1" in msg

    def test_summary_round_trip(self):
        v = InvariantViolation(
            "boom", check="particle_count", stage="decomp/exchange",
            step=2, rank=0, stats={"n": np.int64(5)},
        )
        back = InvariantViolation.from_summary(v.summary())
        assert back.check == v.check and back.stage == v.stage
        assert back.step == v.step and back.rank == v.rank
        assert str(back) == str(v)  # no double prefixing


class TestFieldSweeps:
    def test_finite_clean(self):
        assert check_finite("pos", np.random.rand(10, 3), stage="s") is None

    def test_finite_detects_nan_and_inf(self):
        arr = np.ones((4, 3))
        arr[2, 1] = np.nan
        v = check_finite("pos", arr, stage="decomp/exchange", step=5, rank=2)
        assert v is not None
        assert v.check == "finite_fields"
        assert v.stage == "decomp/exchange"
        assert v.step == 5 and v.rank == 2
        assert v.stats["n_nan"] == 1

    def test_finite_empty_ok(self):
        assert check_finite("pos", np.zeros((0, 3)), stage="s") is None

    def test_positive_flags_zero_negative_nan(self):
        for bad in (0.0, -1.0, np.nan):
            v = check_positive("mass", np.array([1.0, bad]), stage="s")
            assert v is not None and v.check == "positive_mass"
        assert check_positive("mass", np.array([1.0, 2.0]), stage="s") is None

    def test_in_box(self):
        assert check_in_box("pos", np.random.rand(8, 3), stage="s") is None
        v = check_in_box("pos", np.array([[0.5, 1.5, 0.5]]), stage="s")
        assert v is not None and v.check == "in_box"
        # NaN counts as out of box
        assert check_in_box("pos", np.array([[np.nan, 0, 0]]), stage="s")


class TestConservation:
    def test_particle_count(self):
        assert check_particle_count(10, 10, stage="s") is None
        v = check_particle_count(10, 9, stage="decomp/exchange", rank=1)
        assert v is not None and v.check == "particle_count"
        assert "-1" in str(v)

    def test_momentum_exact(self):
        p = np.array([1.0, -2.0, 0.5])
        assert check_momentum(p, p.copy(), stage="s") is None
        v = check_momentum(p, p + 1e-3, stage="s", scale=1.0)
        assert v is not None and v.check == "momentum_conservation"

    def test_momentum_tolerates_reassociation(self):
        p = np.array([1.0, -2.0, 0.5])
        assert check_momentum(p, p + 1e-13, stage="s", scale=1.0) is None

    def test_mesh_mass(self):
        assert check_mesh_mass(1.0, 1.0 + 1e-12, stage="s") is None
        v = check_mesh_mass(0.9, 1.0, stage="mesh/assignment")
        assert v is not None and v.check == "mass_conservation"
        assert check_mesh_mass(np.nan, 1.0, stage="s") is not None


class TestOctreeCheck:
    def test_clean_tree(self):
        rng = np.random.default_rng(0)
        tree = Octree(rng.random((64, 3)), rng.random(64) + 0.1)
        assert check_octree(tree) is None

    def test_detects_tampered_mass(self):
        rng = np.random.default_rng(1)
        tree = Octree(rng.random((64, 3)), np.ones(64))
        tree.node_mass[0] *= 2.0  # simulated in-memory corruption
        v = check_octree(tree, step=1, rank=0)
        assert v is not None and v.check == "octree_moments"

    def test_detects_tampered_com(self):
        rng = np.random.default_rng(2)
        tree = Octree(rng.random((64, 3)), np.ones(64))
        # push a node's COM far outside its cube
        idx = tree.n_nodes - 1
        tree.node_com[idx] = tree.node_center[idx] + 10.0
        v = check_octree(tree)
        assert v is not None and v.check == "octree_com_bounds"

    def test_detects_nonfinite_com(self):
        rng = np.random.default_rng(3)
        tree = Octree(rng.random((64, 3)), np.ones(64))
        tree.node_com[1, 0] = np.nan
        v = check_octree(tree)
        assert v is not None and v.check == "octree_moments"


class TestDomainChecks:
    def test_uniform_partition_clean(self):
        d = MultisectionDecomposition.uniform((2, 2, 1))
        assert check_domain_partition(d) is None

    def test_broken_bounds(self):
        d = MultisectionDecomposition.uniform((2, 1, 1))
        d.x_bounds[1] = d.x_bounds[0] - 0.1  # overlap
        v = check_domain_partition(d)
        assert v is not None and v.check == "domain_partition"

    def test_containment(self):
        d = MultisectionDecomposition.uniform((2, 1, 1))
        inside = np.array([[0.1, 0.5, 0.5]])   # rank 0's half
        outside = np.array([[0.9, 0.5, 0.5]])  # rank 1's half
        assert check_domain_containment(inside, d, 0) is None
        v = check_domain_containment(outside, d, 0, step=4)
        assert v is not None and v.check == "domain_containment"
        assert v.rank == 0 and v.step == 4


def test_first_violation():
    v = InvariantViolation("x", check="c", stage="s")
    assert first_violation(None, None) is None
    assert first_violation(None, v, None) is v
