"""Unit tests for the silent-data-corruption auditor: cadence, the
live-state fingerprint audit, the ABFT force spot-check (including the
serial TreePM solver hookup), and the policy engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PMConfig, SdcConfig, TreeConfig, TreePMConfig
from repro.mpi.faults import flip_array_bits
from repro.treepm.solver import TreePMSolver
from repro.validate.sdc import (
    SdcAuditor,
    SdcEvent,
    SdcViolation,
    SdcWarning,
)

pytestmark = pytest.mark.timeout(120)


class _SoloComm:
    """Single-rank communicator stub for collective audit calls."""

    size = 1
    rank = 0
    world_rank = 0

    def allgather(self, value):
        return [value]

    def allreduce(self, arr, op="sum"):
        return np.asarray(arr)


def _system(n=48, seed=4):
    rng = np.random.default_rng(seed)
    return (
        rng.random((n, 3)),
        np.full(n, 1.0 / n),
        np.arange(n, dtype=np.int64),
    )


def _solver(sdc=None, group_size=8):
    return TreePMSolver(
        config=TreePMConfig(
            tree=TreeConfig(group_size=group_size),
            pm=PMConfig(mesh_size=8),
        ),
        sdc=sdc,
    )


class TestCadence:
    def test_disabled_policy_never_due(self):
        aud = SdcAuditor(config=SdcConfig(policy="off"))
        assert not aud.enabled
        assert not aud.due(1)

    def test_audit_every(self):
        aud = SdcAuditor(config=SdcConfig(policy="warn", audit_every=3))
        assert [s for s in range(10) if aud.due(s)] == [3, 6, 9]

    def test_step_zero_not_due(self):
        aud = SdcAuditor(config=SdcConfig(policy="heal", audit_every=1))
        assert not aud.due(0)
        assert aud.due(1)


class TestFingerprintAudit:
    def test_clean_state_passes(self):
        _, mass, ids = _system()
        aud = SdcAuditor(config=SdcConfig(policy="heal"))
        comm = _SoloComm()
        aud.set_reference(comm, ids, mass)
        assert aud.fingerprint_audit(comm, ids, mass, step=1) is None
        assert aud.events == []

    def test_first_call_freezes_reference(self):
        _, mass, ids = _system()
        aud = SdcAuditor(config=SdcConfig(policy="heal"))
        comm = _SoloComm()
        assert aud.fingerprint_audit(comm, ids, mass, step=0) is None
        assert aud._reference_fp is not None

    @pytest.mark.parametrize("which", ["mass", "ids"])
    def test_single_bit_flip_detected(self, which):
        _, mass, ids = _system()
        aud = SdcAuditor(config=SdcConfig(policy="heal"))
        comm = _SoloComm()
        aud.set_reference(comm, ids, mass)
        if which == "mass":
            flip_array_bits(mass, nbits=1, seed=7)
        else:
            flip_array_bits(ids, nbits=1, seed=7)
        ev = aud.fingerprint_audit(comm, ids, mass, step=2)
        assert ev is not None
        assert ev.kind == "fingerprint" and ev.attribution == "live"
        assert ev.step == 2 and not ev.healed
        assert aud.events == [ev]

    def test_lost_particle_detected(self):
        _, mass, ids = _system()
        aud = SdcAuditor(config=SdcConfig(policy="heal"))
        comm = _SoloComm()
        aud.set_reference(comm, ids, mass)
        ev = aud.fingerprint_audit(comm, ids[:-1], mass[:-1], step=1)
        assert ev is not None and "count" in ev.detail

    def test_disabled_returns_none(self):
        _, mass, ids = _system()
        aud = SdcAuditor(config=SdcConfig(policy="off"))
        assert aud.fingerprint_audit(_SoloComm(), ids, mass, step=1) is None


class TestSpotCheck:
    def test_clean_sweep_passes(self):
        aud = SdcAuditor(
            config=SdcConfig(policy="heal", spot_check_groups=999)
        )
        solver = _solver(sdc=aud)
        pos, mass, _ = _system()
        solver.forces(pos, mass)
        assert aud.events == []
        assert aud.audits_run >= 1

    def test_corrupted_sweep_detected_and_native_disabled(self):
        aud = SdcAuditor(
            config=SdcConfig(policy="heal", spot_check_groups=999)
        )
        solver = _solver()
        solver.tree.retain_last_sweep = True
        pos, mass, _ = _system()
        solver.forces(pos, mass)
        solver.tree.last_sweep["acc_sorted"][0, 0] += 1.0
        ev = aud.spot_check(solver.tree, step=3)
        assert ev is not None
        assert ev.kind == "spot_check" and ev.attribution == "compute"
        assert "differ from the" in ev.detail
        assert solver.tree._executor.use_native is False

    def test_no_retained_sweep_is_a_noop(self):
        aud = SdcAuditor(config=SdcConfig(policy="heal"))
        solver = _solver()
        assert aud.spot_check(solver.tree, step=1) is None

    def test_zero_groups_disables(self):
        aud = SdcAuditor(
            config=SdcConfig(policy="heal", spot_check_groups=0)
        )
        solver = _solver(sdc=aud)
        assert solver.tree.retain_last_sweep is False
        pos, mass, _ = _system()
        solver.forces(pos, mass)
        assert aud.events == []


class TestSerialSolverIntegration:
    """The TreePMSolver runs the spot-check inline and, under ``heal``,
    returns forces recomputed through the reference pipeline."""

    def _sabotage_once(self, solver):
        orig = solver.tree.forces
        fired = []

        def wrapped(pos, mass, **kw):
            acc, stats = orig(pos, mass, **kw)
            if not fired:
                fired.append(True)
                solver.tree.last_sweep["acc_sorted"][0, 0] *= -1.0
            return acc, stats

        solver.tree.forces = wrapped

    def test_heal_resweeps_through_reference(self):
        pos, mass, _ = _system()
        clean = _solver().forces(pos, mass)
        aud = SdcAuditor(
            config=SdcConfig(policy="heal", spot_check_groups=999)
        )
        solver = _solver(sdc=aud)
        self._sabotage_once(solver)
        healed = solver.forces(pos, mass)
        (ev,) = aud.events
        assert ev.kind == "spot_check" and ev.healed
        assert "healed by reference re-sweep" in ev.detail
        np.testing.assert_array_equal(healed.total, clean.total)

    def test_abort_raises(self):
        pos, mass, _ = _system()
        aud = SdcAuditor(
            config=SdcConfig(policy="abort", spot_check_groups=999)
        )
        solver = _solver(sdc=aud)
        self._sabotage_once(solver)
        with pytest.raises(SdcViolation):
            solver.forces(pos, mass)

    def test_warn_records_and_continues(self):
        pos, mass, _ = _system()
        aud = SdcAuditor(
            config=SdcConfig(policy="warn", spot_check_groups=999)
        )
        solver = _solver(sdc=aud)
        self._sabotage_once(solver)
        with pytest.warns(SdcWarning):
            solver.forces(pos, mass)
        (ev,) = aud.events
        assert not ev.healed
        # warn must not touch the production path
        assert solver.tree._executor.use_native is True

    def test_audit_every_skips_calls(self):
        aud = SdcAuditor(
            config=SdcConfig(
                policy="warn", audit_every=2, spot_check_groups=999
            )
        )
        solver = _solver(sdc=aud)
        pos, mass, _ = _system()
        solver.forces(pos, mass)
        assert aud.audits_run == 0  # first call: 1 % 2 != 0
        solver.forces(pos, mass)
        assert aud.audits_run == 1


class TestPolicyEngine:
    def _event(self, healed=False):
        return SdcEvent(step=1, kind="snapshot", array="mass", healed=healed)

    def test_off_ignores(self):
        aud = SdcAuditor(config=SdcConfig(policy="off"))
        aud.apply_policy(_SoloComm(), [self._event()])

    def test_warn_warns_per_event(self):
        aud = SdcAuditor(config=SdcConfig(policy="warn"))
        with pytest.warns(SdcWarning):
            aud.apply_policy(_SoloComm(), [self._event()])

    def test_heal_passes_healed_events(self):
        aud = SdcAuditor(config=SdcConfig(policy="heal"))
        aud.apply_policy(_SoloComm(), [self._event(healed=True)])

    def test_heal_raises_on_unhealed(self):
        aud = SdcAuditor(config=SdcConfig(policy="heal"))
        with pytest.raises(SdcViolation) as info:
            aud.apply_policy(_SoloComm(), [self._event()])
        assert len(info.value.events) == 1

    def test_abort_raises_even_when_healed(self):
        aud = SdcAuditor(config=SdcConfig(policy="abort"))
        with pytest.raises(SdcViolation):
            aud.apply_policy(_SoloComm(), [self._event(healed=True)])

    def test_none_comm_is_local_verdict(self):
        aud = SdcAuditor(config=SdcConfig(policy="heal"))
        with pytest.raises(SdcViolation):
            aud.apply_policy(None, [self._event()])

    def test_mark_rolled_back(self):
        aud = SdcAuditor(config=SdcConfig(policy="heal"))
        ev = self._event()
        aud.mark_rolled_back([ev], boundary=4)
        assert ev.healed and "healed by rollback to step 4" in ev.detail

    def test_event_summary_roundtrips_to_json(self):
        import json

        ev = SdcEvent(step=2, kind="transport", array="shm_frame")
        assert json.loads(json.dumps(ev.summary()))["kind"] == "transport"
