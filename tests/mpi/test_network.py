"""Tests of the torus network model and traffic accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.network import (
    Message,
    PhaseTraffic,
    TorusNetwork,
    TrafficLog,
)
from repro.mpi.runtime import MPIRuntime


class TestTorusGeometry:
    def test_coord_roundtrip(self):
        net = TorusNetwork((3, 4, 5))
        for rank in range(net.n_nodes):
            assert net.rank_of(net.coord(rank)) == rank

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            TorusNetwork((0, 1, 1))
        with pytest.raises(ValueError):
            TorusNetwork((2, 2))
        with pytest.raises(ValueError):
            TorusNetwork((2, 2, 2), link_bandwidth=-1)

    def test_route_length_is_manhattan_torus_distance(self):
        net = TorusNetwork((4, 4, 4))
        for src, dst, expected in [
            (0, 0, 0),
            (0, 1, 1),  # one z step
            (0, net.rank_of((2, 0, 0)), 2),
            (0, net.rank_of((3, 0, 0)), 1),  # wraps around
            (0, net.rank_of((2, 2, 2)), 6),
            (0, net.rank_of((3, 3, 3)), 3),  # wraps all dims
        ]:
            assert len(net.route(src, dst)) == expected

    def test_route_is_connected_path(self):
        net = TorusNetwork((3, 5, 2))
        src, dst = 1, 28
        route = net.route(src, dst)
        assert route[0][0] == src
        assert route[-1][1] == dst
        for (a, b), (c, d) in zip(route[:-1], route[1:]):
            assert b == c

    def test_route_steps_are_unit_hops(self):
        net = TorusNetwork((4, 4, 4))
        for a, b in net.route(0, net.rank_of((2, 3, 1))):
            ca, cb = np.array(net.coord(a)), np.array(net.coord(b))
            d = np.abs(ca - cb)
            d = np.minimum(d, 4 - d)  # periodic hop
            assert d.sum() == 1

    def test_rank_outside_torus_rejected(self):
        net = TorusNetwork((2, 2, 2))
        with pytest.raises(ValueError):
            net.coord(8)


class TestPhaseTime:
    def test_single_message_time(self):
        net = TorusNetwork((4, 1, 1), link_bandwidth=1e9, link_latency=1e-6)
        ph = PhaseTraffic("x", [Message(0, 1, 10**9)])
        t = net.phase_time(ph)
        assert t.bandwidth_seconds == pytest.approx(1.0)
        assert t.latency_seconds == pytest.approx(1e-6)
        assert t.seconds == pytest.approx(1.0 + 1e-6)

    def test_self_messages_free(self):
        net = TorusNetwork((2, 1, 1))
        ph = PhaseTraffic("x", [Message(0, 0, 10**12)])
        assert net.phase_time(ph).seconds == 0.0

    def test_congestion_serializes_at_receiver(self):
        """Many senders to one receiver: endpoint bytes dominate."""
        net = TorusNetwork((8, 1, 1), link_bandwidth=1e9, link_latency=0.0)
        msgs = [Message(s, 0, 10**8) for s in range(1, 8)]
        t = net.phase_time(PhaseTraffic("fan-in", msgs))
        assert t.max_endpoint_bytes == 7 * 10**8
        assert t.seconds == pytest.approx(0.7)

    def test_disjoint_pairs_run_concurrently(self):
        """Disjoint nearest-neighbor pairs share no links: phase time
        equals a single transfer."""
        net = TorusNetwork((8, 1, 1), link_bandwidth=1e9, link_latency=0.0)
        msgs = [Message(2 * i, 2 * i + 1, 10**9) for i in range(4)]
        t = net.phase_time(PhaseTraffic("pairs", msgs))
        assert t.seconds == pytest.approx(1.0)

    def test_link_congestion_detected(self):
        """Messages crossing a common link accumulate on it."""
        net = TorusNetwork((8, 1, 1), link_bandwidth=1e9, link_latency=0.0)
        # 0->4, 1->4, 2->4... all cross link 3->4 in x dimension-order
        msgs = [Message(s, 4, 10**8) for s in (1, 2, 3)]
        t = net.phase_time(PhaseTraffic("hotlink", msgs))
        assert t.max_link_bytes == 3 * 10**8

    def test_empty_phase(self):
        net = TorusNetwork((2, 2, 2))
        t = net.phase_time(PhaseTraffic("empty"))
        assert t.seconds == 0.0
        assert t.n_messages == 0


class TestTrafficLog:
    def test_phases_accumulate(self):
        log = TrafficLog()
        log.record(0, 1, 100)
        log.begin_phase("a")
        log.record(1, 2, 200)
        log.record(2, 3, 300)
        assert log.phase("a").total_bytes == 500
        assert log.phase("startup").total_bytes == 100

    def test_latest_phase_with_name_wins(self):
        log = TrafficLog()
        log.begin_phase("x")
        log.record(0, 1, 1)
        log.begin_phase("x")
        log.record(0, 1, 2)
        assert log.phase("x").total_bytes == 2

    def test_unknown_phase_raises(self):
        with pytest.raises(KeyError):
            TrafficLog().phase("nope")

    def test_merged(self):
        log = TrafficLog()
        log.begin_phase("a")
        log.record(0, 1, 1)
        log.begin_phase("b")
        log.record(0, 1, 2)
        log.begin_phase("a")
        log.record(0, 1, 4)
        assert log.merged(["a"]).total_bytes == 5
        assert log.merged(["a", "b"]).total_bytes == 7

    def test_max_senders_per_receiver(self):
        ph = PhaseTraffic(
            "x",
            [Message(1, 0, 1), Message(2, 0, 1), Message(2, 0, 1), Message(0, 1, 1)],
        )
        assert ph.max_senders_per_receiver() == 2


class TestRuntimeTrafficIntegration:
    def test_alltoallv_traffic_recorded(self):
        rt = MPIRuntime(4)

        def fn(comm):
            comm.traffic_phase("exchange")
            comm.alltoallv([np.zeros(8) for _ in range(comm.size)])
            comm.barrier()

        rt.run(fn)
        ph = rt.traffic.phase("exchange")
        # 4 ranks x 3 remote destinations x 64 bytes
        assert ph.total_bytes == 4 * 3 * 64
        assert ph.max_senders_per_receiver() == 3

    def test_bcast_uses_log_messages(self):
        rt = MPIRuntime(8)

        def fn(comm):
            comm.traffic_phase("bc")
            comm.bcast(np.zeros(1) if comm.rank == 0 else None, root=0)
            comm.barrier()

        rt.run(fn)
        # binomial tree on 8 ranks: exactly 7 messages
        assert rt.traffic.phase("bc").n_messages == 7

    def test_modeled_time_positive_for_real_exchange(self):
        rt = MPIRuntime(4, torus_shape=(2, 2, 1))

        def fn(comm):
            comm.traffic_phase("x")
            comm.alltoallv([np.zeros(1000) for _ in range(comm.size)])
            comm.barrier()

        rt.run(fn)
        t = rt.network.phase_time(rt.traffic.phase("x"))
        assert t.seconds > 0
        assert t.total_bytes == 4 * 3 * 8000
