"""Shrink-and-continue recovery: consensus, epochs, buddies, reliability.

All multi-rank tests run on the elastic runtime; the conftest SIGALRM
alarm is the backstop against hangs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomp.multisection import divisions_for_ranks
from repro.mpi.faults import (
    CommTimeout,
    FaultPlan,
    InjectedFault,
    MessageDropped,
    PeerFailure,
)
from repro.mpi.recovery import BuddyStore, RecoveryError, shrink_after_failure
from repro.mpi.runtime import MPIRuntime

pytestmark = [pytest.mark.faults, pytest.mark.timeout(90)]


def elastic_run(n, fn, **kwargs):
    kwargs.setdefault("recv_timeout", 3.0)
    rt = MPIRuntime(n, elastic=True, **kwargs)
    return rt.run(fn), rt


class TestSurvivorConsensus:
    def test_shrink_after_one_death(self):
        def fn(comm):
            if comm.rank == 2:
                raise InjectedFault("down")
            try:
                comm.barrier()
            except (PeerFailure, CommTimeout):
                pass
            new_comm, dead, epoch = shrink_after_failure(comm, timeout=10.0)
            # the shrunk communicator must be fully operational
            total = new_comm.allreduce(new_comm.world_rank)
            return {
                "dead": dead,
                "epoch": epoch,
                "size": new_comm.size,
                "rank": new_comm.rank,
                "world": new_comm.world_rank,
                "total": total,
            }

        results, rt = elastic_run(4, fn)
        assert rt.dead_ranks == [2]
        assert results[2] is None
        live = [r for r in results if r is not None]
        assert all(r["dead"] == [2] for r in live)
        assert all(r["epoch"] == 1 for r in live)
        assert all(r["size"] == 3 for r in live)
        # survivors renumbered 0..2 in world-rank order
        assert sorted(r["rank"] for r in live) == [0, 1, 2]
        assert [r["world"] for r in live] == [0, 1, 3]
        assert all(r["total"] == 0 + 1 + 3 for r in live)

    def test_empty_dead_set_round_still_bumps_epoch(self):
        def fn(comm):
            assert comm.epoch == 0
            new_comm, dead, epoch = shrink_after_failure(comm, timeout=10.0)
            assert new_comm.size == comm.size
            return dead, epoch, new_comm.epoch

        results, _ = elastic_run(3, fn)
        assert all(r == ([], 1, 1) for r in results)

    def test_consecutive_rounds(self):
        def fn(comm):
            c1, _, e1 = shrink_after_failure(comm, timeout=10.0)
            c2, _, e2 = shrink_after_failure(c1, timeout=10.0)
            return e1, e2, c2.allreduce(1)

        results, _ = elastic_run(2, fn)
        assert all(r == (1, 2, 2) for r in results)

    def test_requires_elastic_runtime(self):
        def fn(comm):
            with pytest.raises(RuntimeError, match="elastic"):
                shrink_after_failure(comm)
            return True

        assert MPIRuntime(1).run(fn) == [True]


class TestPeerFailureSurfacing:
    def test_recv_from_dead_rank_raises_peer_failure(self):
        def fn(comm):
            if comm.rank == 1:
                raise InjectedFault("down")
            with pytest.raises(PeerFailure) as exc_info:
                comm.recv(1, timeout=5.0)
            assert 1 in exc_info.value.dead_ranks
            return "survived"

        results, _ = elastic_run(2, fn)
        assert results[0] == "survived"

    def test_barrier_with_dead_rank_raises_peer_failure(self):
        def fn(comm):
            if comm.rank == 1:
                raise InjectedFault("down")
            with pytest.raises(PeerFailure):
                comm.barrier()
            return "survived"

        results, _ = elastic_run(3, fn)
        assert results[0] == results[2] == "survived"

    def test_delivered_message_wins_over_death_mark(self):
        # a message already in the queue must be received even if the
        # sender has since died — buddy copies depend on this
        def fn(comm):
            if comm.rank == 0:
                comm.send({"x": 41}, 1, tag=9)
                raise InjectedFault("down after send")
            got = comm.recv(0, tag=9, timeout=5.0)
            return got["x"]

        results, _ = elastic_run(2, fn)
        assert results[1] == 41

    def test_all_ranks_dead_is_an_error(self):
        def fn(comm):
            raise InjectedFault("everyone down")

        rt = MPIRuntime(2, elastic=True, recv_timeout=2.0)
        with pytest.raises(RuntimeError, match="lost all 2 rank"):
            rt.run(fn)


class TestEpochs:
    def test_stale_epoch_message_is_discarded(self):
        def fn(comm):
            q = comm._state.queues[0][0]
            q.put((-1, 4, "stale"))  # pre-recovery straggler
            comm.send("fresh", 0, tag=4)
            got = comm.recv(0, tag=4, timeout=5.0)
            return got, comm.stale_rejected

        (result,), _ = elastic_run(1, fn)
        assert result == ("fresh", 1)

    def test_shrunk_comm_carries_new_epoch_on_messages(self):
        def fn(comm):
            new_comm, _, epoch = shrink_after_failure(comm, timeout=10.0)
            new_comm.send(comm.rank, (new_comm.rank + 1) % 2, tag=1)
            got = new_comm.recv((new_comm.rank + 1) % 2, tag=1, timeout=5.0)
            return epoch, got

        results, _ = elastic_run(2, fn)
        assert results[0] == (1, 1) and results[1] == (1, 0)


class TestBuddyStore:
    @staticmethod
    def _arrays(rank, n=5):
        rng = np.random.default_rng(rank)
        return {
            "pos": rng.random((n, 3)),
            "mom": rng.normal(size=(n, 3)),
            "mass": np.full(n, 0.125),
            "ids": np.arange(rank * n, (rank + 1) * n),
        }

    def test_ring_refresh(self):
        def fn(comm):
            store = BuddyStore()
            store.refresh(comm, self._arrays(comm.rank), step=3)
            assert store.self_copy.owner_world_rank == comm.world_rank
            assert store.step == 3
            assert store.self_copy.verify()
            peer = store.peer_copy
            assert peer.owner_world_rank == (comm.rank - 1) % comm.size
            assert peer.verify()
            np.testing.assert_array_equal(
                peer.arrays["ids"], self._arrays(peer.owner_world_rank)["ids"]
            )
            ref = store.self_copy.reference
            assert ref["count"] == 5 * comm.size
            assert ref["mass"] == pytest.approx(0.125 * 5 * comm.size)
            return True

        results, _ = elastic_run(3, fn)
        assert all(results)

    def test_single_rank_has_no_peer(self):
        def fn(comm):
            store = BuddyStore()
            store.refresh(comm, self._arrays(0), step=0)
            return store.peer_copy is None and store.self_copy is not None

        results, _ = elastic_run(1, fn)
        assert results == [True]

    def test_refresh_requires_particle_keys(self):
        def fn(comm):
            store = BuddyStore()
            with pytest.raises(ValueError, match="mom"):
                store.refresh(comm, {"pos": np.zeros((1, 3))}, step=0)
            return True

        results, _ = elastic_run(1, fn)
        assert results == [True]

    def test_checksum_detects_tampering(self):
        def fn(comm):
            store = BuddyStore()
            store.refresh(comm, self._arrays(comm.rank), step=1)
            store.peer_copy.arrays["mass"][0] += 1.0
            return store.peer_copy.verify()

        results, _ = elastic_run(2, fn)
        assert results == [False, False]

    def test_plan_and_recover_covers_dead_rank(self):
        def fn(comm):
            if comm.rank == 1:
                store = BuddyStore()
                store.refresh(comm, self._arrays(1), step=2)
                raise InjectedFault("down")
            store = BuddyStore()
            store.refresh(comm, self._arrays(comm.rank), step=2)
            try:
                comm.barrier()
            except (PeerFailure, CommTimeout):
                pass
            new_comm, dead, _ = shrink_after_failure(comm, timeout=10.0)
            feasible, boundary, reason = store.plan_recovery(new_comm, dead)
            assert feasible, reason
            assert boundary == 2
            arrays, adopted = store.recovered_arrays(dead)
            # rank 2 was rank 1's ring buddy: it adopts the dead block
            if comm.world_rank == 2:
                assert adopted == [1]
                assert len(arrays["ids"]) == 10
                assert set(self._arrays(1)["ids"]) <= set(arrays["ids"])
            else:
                assert adopted == []
                assert len(arrays["ids"]) == 5
            total = new_comm.allreduce(len(arrays["ids"]))
            assert total == 15  # nothing lost, nothing duplicated
            return True

        results, rt = elastic_run(3, fn)
        assert rt.dead_ranks == [1]
        assert results[0] and results[2]

    def test_plan_infeasible_when_buddy_also_dead(self):
        def fn(comm):
            store = BuddyStore()
            try:
                # a survivor's refresh may itself trip over a concurrent
                # death (its feeder's message racing the death mark) —
                # the elastic loop treats that exactly like a failed
                # barrier, and so does this test
                store.refresh(comm, self._arrays(comm.rank), step=1)
                if comm.rank in (1, 2):  # rank 2 is rank 1's buddy
                    raise InjectedFault("down")
                comm.barrier()
            except (PeerFailure, CommTimeout):
                pass
            new_comm, dead, _ = shrink_after_failure(comm, timeout=10.0)
            assert sorted(dead) == [1, 2]
            feasible, _, reason = store.plan_recovery(new_comm, dead)
            assert not feasible
            assert "both lost" in reason
            return True

        results, _ = elastic_run(4, fn)
        assert results[0] and results[3]

    def test_recovered_arrays_without_snapshot_raises(self):
        store = BuddyStore()
        with pytest.raises(RecoveryError, match="no self snapshot"):
            store.recovered_arrays([1])


class TestReliableTransport:
    def test_reliable_send_absorbs_drop(self):
        plan = FaultPlan().drop_messages(src=0, dst=1, nth=0, count=1)

        def fn(comm):
            if comm.rank == 0:
                comm.send("payload", 1, tag=2, reliable=True)
                return "sent"
            return comm.recv(0, tag=2, timeout=5.0)

        rt = MPIRuntime(2, fault_plan=plan, recv_timeout=5.0)
        assert rt.run(fn) == ["sent", "payload"]

    def test_unreliable_send_loses_the_message(self):
        plan = FaultPlan().drop_messages(src=0, dst=1, nth=0, count=1)

        def fn(comm):
            if comm.rank == 0:
                comm.send("payload", 1, tag=2)
                return "sent"
            with pytest.raises(CommTimeout):
                comm.recv(0, tag=2, timeout=0.3)
            return "timed out"

        rt = MPIRuntime(2, fault_plan=plan)
        assert rt.run(fn) == ["sent", "timed out"]

    def test_exhausted_budget_raises_message_dropped(self):
        # every attempt dropped and a zero retry budget: the reliable
        # send must fail fast with the structured MessageDropped
        plan = FaultPlan().drop_messages(src=0, dst=1, nth=0, count=50)

        def fn(comm):
            if comm.rank == 0:
                with pytest.raises(MessageDropped) as exc_info:
                    comm.send("payload", 1, tag=2, reliable=True)
                assert exc_info.value.rank == 0
                assert exc_info.value.tag == 2
            return True

        rt = MPIRuntime(2, fault_plan=plan, retry_budget=0)
        assert rt.run(fn) == [True, True]

    def test_reliable_alltoall_under_drops(self):
        plan = FaultPlan().drop_messages(nth=0, count=3)

        def fn(comm):
            comm.fault_point(0)
            out = comm.alltoall(
                [f"{comm.rank}->{d}" for d in range(comm.size)], reliable=True
            )
            return out

        rt = MPIRuntime(3, fault_plan=plan, recv_timeout=5.0)
        results = rt.run(fn)
        for dst, row in enumerate(results):
            assert row == [f"{src}->{dst}" for src in range(3)]

    def test_budget_resets_at_step_boundaries(self):
        # one drop in step 0 (seq 0; its retry is seq 1) and one in
        # step 1 (seq 2): two retries total fit a budget of 1 only
        # because fault_point refills it at the step boundary
        plan = (
            FaultPlan()
            .drop_messages(src=0, dst=1, nth=0, count=1)
            .drop_messages(src=0, dst=1, nth=2, count=1)
        )

        def fn(comm):
            for step in range(2):
                comm.fault_point(step)
                if comm.rank == 0:
                    comm.send(step, 1, tag=3, reliable=True)
                else:
                    assert comm.recv(0, tag=3, timeout=5.0) == step
            return True

        rt = MPIRuntime(2, fault_plan=plan, retry_budget=1, recv_timeout=5.0)
        assert rt.run(fn) == [True, True]


class TestStructuredTimeout:
    def test_comm_timeout_carries_context(self):
        def fn(comm):
            if comm.rank == 0:
                comm.fault_point(7)
                with pytest.raises(CommTimeout) as exc_info:
                    comm.recv(1, tag=5, timeout=0.2)
                exc = exc_info.value
                return {
                    "rank": exc.rank,
                    "source": exc.source,
                    "tag": exc.tag,
                    "step": exc.step,
                    "elapsed": exc.elapsed,
                    "op": exc.op,
                }
            return None

        results = MPIRuntime(2).run(fn)
        got = results[0]
        assert got["rank"] == 0
        assert got["source"] == 1
        assert got["tag"] == 5
        assert got["step"] == 7
        assert got["elapsed"] >= 0.2
        assert "recv" in got["op"]


class TestDivisionsForRanks:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, (1, 1, 1)), (2, (2, 1, 1)), (3, (3, 1, 1)), (4, (2, 2, 1)),
         (6, (3, 2, 1)), (8, (2, 2, 2)), (12, (3, 2, 2))],
    )
    def test_compact_factorizations(self, n, expected):
        assert divisions_for_ranks(n) == expected

    def test_product_invariant(self):
        for n in range(1, 65):
            dx, dy, dz = divisions_for_ranks(n)
            assert dx * dy * dz == n
            assert dx >= dy >= dz >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            divisions_for_ranks(0)
