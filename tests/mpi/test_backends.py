"""Pluggable communicator backends: registry, capabilities, parity.

The thread and multiprocess backends share the collective algorithms of
``CollectiveComm``, so a fault-free SPMD program must produce
bit-identical results on either — these tests pin that contract for
every collective, for communicator splits, for sendrecv exchange
patterns and for a short end-to-end ``ParallelSimulation`` run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DomainConfig, PMConfig, SimulationConfig, TreePMConfig
from repro.mpi import (
    BackendCapabilities,
    CommBackend,
    available_backends,
    backend_capabilities,
    create_backend,
    register_backend,
    resolve_backend,
)
from repro.sim.parallel import RankReport, run_parallel_simulation

pytestmark = [pytest.mark.timeout(300)]

BACKENDS = ("thread", "multiprocess")

# large enough to cross the multiprocess backend's shared-memory
# threshold (64 KiB) so parity also covers the shm transport path
BIG_N = 16384


def _run(backend, n_ranks, fn):
    runtime = create_backend(backend, n_ranks, recv_timeout=30.0)
    return runtime.run(fn)


class TestRegistry:
    def test_builtin_backends_registered(self):
        avail = available_backends()
        assert avail["thread"] is True
        assert avail["multiprocess"] is True
        assert "mpi4py" in avail  # importable only where mpi4py exists

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown communicator backend"):
            resolve_backend("smoke-signals")

    def test_create_backend_passes_instances_through(self):
        runtime = create_backend("thread", 2)
        assert create_backend(runtime, 99) is runtime

    def test_register_custom_backend(self):
        class Fake(CommBackend):
            name = "fake-test-backend"

            @classmethod
            def capabilities(cls):
                return BackendCapabilities()

            def __init__(self, n_ranks, **kwargs):
                self.n_ranks = n_ranks

            def run(self, fn, *args, **kwargs):
                return ["ran"] * self.n_ranks

        register_backend("fake-test-backend", lambda: Fake)
        runtime = create_backend("fake-test-backend", 3)
        assert runtime.run(None) == ["ran", "ran", "ran"]

    def test_mpi4py_gated_on_import(self):
        pytest.importorskip("mpi4py", reason="mpi4py installed: gate inert")
        # unreachable unless mpi4py is present

    def test_mpi4py_missing_raises_actionable_error(self):
        try:
            import mpi4py  # noqa: F401
        except ImportError:
            with pytest.raises(ImportError, match="pip install mpi4py"):
                create_backend("mpi4py", 2)
            assert available_backends()["mpi4py"] is False
        else:
            pytest.skip("mpi4py installed")


class TestCapabilities:
    def test_thread_capabilities(self):
        caps = backend_capabilities("thread")
        assert caps.simulated_kill and caps.network_model and caps.elastic
        assert not caps.true_parallelism and not caps.real_process_kill

    def test_multiprocess_capabilities(self):
        caps = backend_capabilities("multiprocess")
        assert caps.true_parallelism and caps.real_process_kill
        assert caps.heartbeat_liveness and caps.elastic
        assert not caps.network_model

    def test_mpi4py_capabilities(self):
        caps = backend_capabilities("mpi4py")  # class-level: no import needed
        assert caps.true_parallelism
        assert not (caps.simulated_kill or caps.elastic or caps.message_faults)


def _collective_program(comm):
    rng = np.random.default_rng(1000 + comm.rank)
    big = rng.standard_normal(BIG_N)  # > shm threshold
    out = {}
    out["bcast"] = comm.bcast(big if comm.rank == 0 else None, root=0)
    out["allreduce"] = comm.allreduce(big)
    out["reduce"] = comm.reduce(big, op="max", root=0)
    out["gather"] = comm.gather(comm.rank * np.ones(3), root=0)
    out["allgather"] = comm.allgather(float(comm.rank + 1))
    out["scatter"] = comm.scatter(
        [np.full(4, r) for r in range(comm.size)] if comm.rank == 0 else None,
        root=0,
    )
    out["alltoall"] = comm.alltoall(
        [rng.standard_normal(8) for _ in range(comm.size)], reliable=True
    )
    comm.barrier()
    return out


def _split_program(comm):
    color = comm.rank % 2
    sub = comm.split(color, key=comm.rank)
    val = sub.allreduce(float(comm.rank + 1))
    members = sub.allgather(comm.world_rank)
    return {"color": color, "sum": val, "members": members,
            "sub_rank": sub.rank, "sub_size": sub.size}


def _exchange_program(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    payload = np.full(BIG_N, float(comm.rank), dtype=np.float64)
    got = comm.sendrecv(payload, dest=right, source=left, sendtag=7, recvtag=7)
    return float(got[0]), float(got.sum())


def _assert_same(a, b, where=""):
    if isinstance(a, (list, tuple)):
        assert isinstance(b, (list, tuple)) and len(a) == len(b), where
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_same(x, y, f"{where}[{i}]")
    elif isinstance(a, np.ndarray):
        np.testing.assert_array_equal(a, b, err_msg=where)
    else:
        assert a == b, where


class TestCrossBackendParity:
    """Each program must return identical values on both backends."""

    def test_collectives_bit_identical(self):
        ref = _run("thread", 3, _collective_program)
        got = _run("multiprocess", 3, _collective_program)
        for r in range(3):
            for key in ref[r]:
                _assert_same(ref[r][key], got[r][key], f"rank {r} {key}")

    def test_split_parity(self):
        ref = _run("thread", 4, _split_program)
        got = _run("multiprocess", 4, _split_program)
        assert ref == got

    def test_exchange_parity(self):
        ref = _run("thread", 3, _exchange_program)
        got = _run("multiprocess", 3, _exchange_program)
        assert ref == got

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_rank_runs(self, backend):
        (result,) = _run(backend, 1, lambda comm: comm.allreduce(5.0))
        assert result == 5.0


def _sim_setup(n_ranks=3, n=96, seed=5):
    cfg = SimulationConfig(
        domain=DomainConfig(
            divisions=(n_ranks, 1, 1), sample_rate=0.3, cost_balance=False
        ),
        treepm=TreePMConfig(pm=PMConfig(mesh_size=16)),
    )
    rng = np.random.default_rng(seed)
    return cfg, rng.random((n, 3)), rng.normal(scale=0.01, size=(n, 3)), np.full(
        n, 1.0 / n
    )


class TestSimulationParity:
    def test_particle_state_bit_identical(self):
        cfg, pos, mom, mass = _sim_setup()
        p_ref, m_ref, w_ref, sims_ref, _ = run_parallel_simulation(
            cfg, pos, mom, mass, 0.0, 0.04, 4, backend="thread"
        )
        p, m, w, sims, _ = run_parallel_simulation(
            cfg, pos, mom, mass, 0.0, 0.04, 4, backend="multiprocess"
        )
        np.testing.assert_array_equal(p, p_ref)
        np.testing.assert_array_equal(m, m_ref)
        np.testing.assert_array_equal(w, w_ref)
        # out-of-process ranks report picklable summaries
        assert all(isinstance(s, RankReport) for s in sims)
        assert [s.steps_taken for s in sims] == [4, 4, 4]
        assert sum(s.n_local for s in sims) == len(pos)
        # same Table I timing surface as the live simulation objects
        assert set(sims[0].table1_rows()) == set(sims_ref[0].table1_rows())

    def test_checkpoint_parity(self, tmp_path):
        cfg, pos, mom, mass = _sim_setup()
        from repro.sim import checkpoint as _ckpt

        dirs = {}
        for backend in BACKENDS:
            d = tmp_path / backend
            run_parallel_simulation(
                cfg, pos, mom, mass, 0.0, 0.04, 4,
                checkpoint_every=2, checkpoint_dir=d, backend=backend,
            )
            dirs[backend] = _ckpt.latest_checkpoint(d)
        states = {
            b: _ckpt.load_distributed_checkpoint(d) for b, d in dirs.items()
        }
        ref, got = states["thread"], states["multiprocess"]
        for key in ("pos", "mom", "mass", "ids"):  # already id-ordered
            np.testing.assert_array_equal(ref[key], got[key], err_msg=key)
