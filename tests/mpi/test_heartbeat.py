"""Supervisor heartbeat escalation thresholds, driven deterministically.

A fake job (board + flags, no real processes) and a fake clock let the
tests place each beat at an exact age: the boundary conditions — a beat
landing exactly on the timeout, a suspect recovering, a worker with a
skewed clock — are otherwise untestable races.
"""

from __future__ import annotations

import threading

import pytest

import repro.mpi.supervisor as sup_mod
from repro.mpi.supervisor import Supervisor


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def time(self):
        return self.now

    def sleep(self, dt):  # pragma: no cover - loop never runs in tests
        self.now += dt


class FakeJob:
    def __init__(self, n_ranks):
        self.n_ranks = n_ranks
        self.hb_board = [0.0] * n_ranks
        self.dead_flags = [0] * n_ranks
        self.reason_buf = bytearray(512)
        self.abort_event = threading.Event()


class FakeProc:
    def __init__(self):
        self.exitcode = None
        self.killed = False

    def kill(self):
        self.killed = True


def _supervisor(n=2, clock=None, **kw):
    clock = clock or FakeClock()
    job = FakeJob(n)
    procs = [FakeProc() for _ in range(n)]
    sup = Supervisor(job, procs, elastic=True, **kw)
    return sup, job, procs, clock


@pytest.fixture
def fake_time(monkeypatch):
    clock = FakeClock()
    monkeypatch.setattr(sup_mod, "time", clock)
    return clock


class TestEscalationThresholds:
    def test_beat_exactly_at_timeout_is_not_suspect(self, fake_time):
        """The threshold comparison is strictly ``>``: a rank whose
        beat age equals the limit is still healthy."""
        sup, job, procs, _ = _supervisor(
            suspect_timeout=5.0, heartbeat_timeout=10.0
        )
        job.hb_board[0] = job.hb_board[1] = 123.0  # any value: change counts
        sup._check_heartbeats()  # observes the first change (age 0)
        fake_time.now += 5.0  # age == suspect_timeout exactly
        sup._check_heartbeats()
        assert not sup.status[0].suspect
        fake_time.now += 5.0  # age == heartbeat_timeout exactly
        sup._check_heartbeats()
        assert sup.status[0].suspect  # past suspect, at (not past) kill
        assert not procs[0].killed
        assert sup.dead == {}

    def test_kill_strictly_past_timeout(self, fake_time):
        sup, job, procs, _ = _supervisor(
            suspect_timeout=5.0, heartbeat_timeout=10.0
        )
        job.hb_board[0] = job.hb_board[1] = 123.0
        sup._check_heartbeats()
        fake_time.now += 10.001
        sup._check_heartbeats()
        assert procs[0].killed and procs[1].killed
        assert 0 in sup.dead and "no heartbeat" in sup.dead[0]
        assert job.dead_flags == [1, 1]

    def test_suspect_recovers_when_beats_resume(self, fake_time):
        sup, job, procs, _ = _supervisor(
            suspect_timeout=5.0, heartbeat_timeout=60.0
        )
        job.hb_board[0] = job.hb_board[1] = 50.0
        sup._check_heartbeats()
        fake_time.now += 7.0
        sup._check_heartbeats()
        assert sup.status[0].suspect
        job.hb_board[0] = 51.0  # the wedge clears; beating resumes
        sup._check_heartbeats()
        assert not sup.status[0].suspect
        assert not procs[0].killed
        assert sup.status[1].suspect  # the quiet one stays suspect

    def test_never_beaten_rank_is_left_alone(self, fake_time):
        """Startup grace: a rank that has not written its first beat is
        neither suspect nor killable (process liveness covers it)."""
        sup, job, procs, _ = _supervisor(
            suspect_timeout=0.1, heartbeat_timeout=0.2
        )
        fake_time.now += 100.0
        sup._check_heartbeats()
        assert not procs[0].killed
        assert sup.dead == {}

    def test_kill_disabled_with_none_timeout(self, fake_time):
        sup, job, procs, _ = _supervisor(
            suspect_timeout=1.0, heartbeat_timeout=None
        )
        job.hb_board[0] = job.hb_board[1] = 1.0
        sup._check_heartbeats()
        fake_time.now += 1e6
        sup._check_heartbeats()
        assert sup.status[0].suspect
        assert not procs[0].killed and sup.dead == {}


class TestClockSkewTolerance:
    def test_board_values_in_the_past_do_not_kill(self, fake_time):
        """A worker whose clock is days behind still proves liveness:
        the age runs on the supervisor's clock from the moment each
        *change* is observed, the value itself is opaque."""
        sup, job, procs, _ = _supervisor(
            suspect_timeout=5.0, heartbeat_timeout=10.0
        )
        skewed = fake_time.now - 86400.0  # "yesterday" by the worker clock
        for i in range(10):
            job.hb_board[0] = skewed + 0.001 * i
            job.hb_board[1] = fake_time.now  # honest peer
            sup._check_heartbeats()
            assert not sup.status[0].suspect
            fake_time.now += 1.0
        assert not procs[0].killed and sup.dead == {}

    def test_future_timestamps_cannot_hide_a_wedge(self, fake_time):
        """A wedged worker that managed to write a far-future timestamp
        is still killed: an unchanging value is an unchanging value."""
        sup, job, procs, _ = _supervisor(
            suspect_timeout=5.0, heartbeat_timeout=10.0
        )
        job.hb_board[0] = fake_time.now + 86400.0  # "tomorrow", then wedge
        job.hb_board[1] = fake_time.now
        sup._check_heartbeats()
        fake_time.now += 11.0
        sup._check_heartbeats()
        assert procs[0].killed and 0 in sup.dead


class TestAdaptiveLiveness:
    def test_constants_hold_until_window_fills(self, fake_time):
        sup, job, procs, _ = _supervisor(
            suspect_timeout=5.0, heartbeat_timeout=50.0,
            adaptive_liveness=True,
        )
        assert sup.effective_timeouts(0) == (5.0, 50.0)
        job.hb_board[0] = 1.0
        sup._check_heartbeats()
        for i in range(Supervisor.GAP_MIN_SAMPLES - 1):
            fake_time.now += 2.0
            job.hb_board[0] = 2.0 + i
            sup._check_heartbeats()
        assert sup.effective_timeouts(0) == (5.0, 50.0)  # one gap short

    def test_slow_fleet_raises_thresholds(self, fake_time):
        """Observed 2 s inter-beat gaps with an 0.5 s configured suspect
        timeout: the adaptive thresholds must stretch so the loaded-but-
        healthy rank is not flagged (or killed) by the stale constant."""
        sup, job, procs, _ = _supervisor(
            suspect_timeout=0.5, heartbeat_timeout=5.0,
            adaptive_liveness=True, adaptive_factor=8.0,
            adaptive_floor=0.5, adaptive_ceil=300.0,
        )
        job.hb_board[0] = job.hb_board[1] = 1.0
        sup._check_heartbeats()
        for i in range(Supervisor.GAP_MIN_SAMPLES + 2):
            fake_time.now += 2.0
            job.hb_board[0] = 2.0 + i
            job.hb_board[1] = 2.0 + i
            sup._check_heartbeats()
            assert not procs[0].killed  # a 2s gap never reaches 8*q90
        suspect, kill = sup.effective_timeouts(0)
        assert suspect == pytest.approx(16.0)  # 8 x the observed 2s gap
        assert kill == pytest.approx(160.0)  # keeps the 1:10 ratio
        fake_time.now += 1.0  # stale by the old 0.5s constant...
        sup._check_heartbeats()
        assert not sup.status[0].suspect  # ...but healthy adaptively

    def test_thresholds_clamped_to_declared_bounds(self, fake_time):
        sup, job, procs, _ = _supervisor(
            suspect_timeout=5.0, heartbeat_timeout=50.0,
            adaptive_liveness=True, adaptive_factor=8.0,
            adaptive_floor=1.0, adaptive_ceil=20.0,
        )
        job.hb_board[0] = job.hb_board[1] = 1.0
        sup._check_heartbeats()
        for i in range(Supervisor.GAP_MIN_SAMPLES + 4):
            fake_time.now += 10.0  # 10s gaps: raw 8*q90 = 80s > ceil
            job.hb_board[0] = 2.0 + i
            job.hb_board[1] = 2.0 + i
            sup._check_heartbeats()
        suspect, _ = sup.effective_timeouts(0)
        assert suspect == 20.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            _supervisor(adaptive_liveness=True,
                        adaptive_floor=10.0, adaptive_ceil=1.0)

    def test_liveness_report_uses_effective_thresholds(self, fake_time):
        sup, job, procs, _ = _supervisor(
            suspect_timeout=5.0, heartbeat_timeout=60.0
        )
        job.hb_board[0] = job.hb_board[1] = 1.0
        sup._check_heartbeats()
        fake_time.now += 6.0
        rows = sup.liveness_report()
        assert all(r["suspect"] for r in rows)
        assert all(r["last_beat_age"] == pytest.approx(6.0) for r in rows)
