"""Fault-injection tests: every scheduled failure must surface as a
clean error — never a hang.  All tests carry the ``faults`` marker and
rely on the conftest SIGALRM alarm as a backstop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.comm import CommAborted
from repro.mpi.faults import (
    CommTimeout,
    FaultPlan,
    InjectedFault,
    apply_scheduled_flips,
    corrupt_payload,
    flip_array_bits,
    flip_file_bits,
    retry_with_backoff,
)
from repro.mpi.runtime import MPIRuntime

pytestmark = [pytest.mark.faults, pytest.mark.timeout(60)]


class TestFaultPlan:
    def test_builder_chains_and_describe(self):
        plan = (
            FaultPlan(seed=7)
            .kill_rank(1, step=2)
            .drop_messages(src=0, dst=1)
            .delay_messages(0.2, src=2, dst=3, nth=1)
            .corrupt_messages(src=1, dst=0)
            .stall_collective("bcast", rank=3)
        )
        assert not plan.empty
        text = plan.describe()
        assert "kill rank 1 at step 2" in text
        assert "drop 0->1" in text
        assert "stall bcast #0 on rank 3" in text

    def test_empty_plan(self):
        assert FaultPlan().empty

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().drop_messages(count=0)
        with pytest.raises(ValueError):
            FaultPlan().drop_messages(probability=0.0)
        with pytest.raises(ValueError):
            FaultPlan().delay_messages(-1.0)

    def test_should_kill(self):
        plan = FaultPlan().kill_rank(2, step=5)
        assert plan.should_kill(2, 5)
        assert not plan.should_kill(2, 4)
        assert not plan.should_kill(1, 5)

    def test_probability_is_deterministic(self):
        plan = FaultPlan(seed=42).drop_messages(
            src=0, dst=1, nth=0, count=100, probability=0.5
        )
        (rule,) = plan.message_events(0, 1)
        hits_a = [rule.hits(s, plan.seed, 0, 1) for s in range(100)]
        hits_b = [rule.hits(s, plan.seed, 0, 1) for s in range(100)]
        assert hits_a == hits_b
        assert 10 < sum(hits_a) < 90  # Bernoulli(0.5), not all-or-nothing

    def test_corrupt_payload_changes_array(self):
        arr = np.ones(4)
        bad = corrupt_payload(arr)
        assert bad.shape == arr.shape and bad.dtype == arr.dtype
        assert bad[0] != arr[0]
        np.testing.assert_array_equal(bad[1:], arr[1:])


class TestInjectedFailures:
    def test_kill_rank_at_fault_point(self):
        plan = FaultPlan().kill_rank(1, step=3)

        def fn(comm):
            for step in range(5):
                comm.fault_point(step)
                comm.barrier()
            return comm.rank

        with pytest.raises(RuntimeError, match="rank 1") as ei:
            MPIRuntime(4, fault_plan=plan).run(fn)
        assert isinstance(ei.value.rank_errors[1], InjectedFault)
        assert "step 3" in str(ei.value.rank_errors[1])

    def test_dropped_message_times_out_instead_of_hanging(self):
        plan = FaultPlan().drop_messages(src=0, dst=1, nth=0)

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(3), dest=1)
            else:
                comm.recv(0)

        with pytest.raises(RuntimeError, match="timed out") as ei:
            MPIRuntime(2, fault_plan=plan, recv_timeout=0.3).run(fn)
        assert isinstance(ei.value.rank_errors[1], CommTimeout)
        assert "from rank 0" in str(ei.value.rank_errors[1])

    def test_delayed_message_still_delivered(self):
        plan = FaultPlan().delay_messages(0.2, src=0, dst=1, nth=0)

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(3), dest=1)
                return None
            return comm.recv(0)

        out = MPIRuntime(2, fault_plan=plan, recv_timeout=5.0).run(fn)
        np.testing.assert_array_equal(out[1], np.arange(3))

    def test_corrupted_message_detected_by_checksum(self):
        """A corrupted payload arrives changed — the receiver can tell."""
        plan = FaultPlan().corrupt_messages(src=0, dst=1, nth=0)

        def fn(comm):
            data = np.ones(8)
            if comm.rank == 0:
                comm.send(data, dest=1)
                return None
            got = comm.recv(0)
            return bool(np.array_equal(got, data))

        out = MPIRuntime(2, fault_plan=plan).run(fn)
        assert out[1] is False

    def test_stalled_collective_caught_by_watchdog(self):
        plan = FaultPlan().stall_collective("bcast", rank=2)

        def fn(comm):
            return comm.bcast(comm.rank, root=0)

        with pytest.raises(RuntimeError, match="watchdog") as ei:
            MPIRuntime(
                4, fault_plan=plan, watchdog_timeout=0.3
            ).run(fn)
        msg = str(ei.value)
        assert "rank 2" in msg and "bcast" in msg
        assert ei.value.abort_origin == 2

    def test_recv_explicit_timeout_overrides_default(self):
        def fn(comm):
            if comm.rank == 1:
                comm.recv(0, timeout=0.2)  # rank 0 never sends
            # rank 0 returns immediately; its exit must not hang rank 1

        with pytest.raises(RuntimeError, match="timed out") as ei:
            MPIRuntime(2).run(fn)
        assert isinstance(ei.value.rank_errors[1], CommTimeout)

    def test_multiple_failures_all_reported(self):
        def fn(comm):
            if comm.rank in (1, 3):
                raise ValueError(f"boom {comm.rank}")
            comm.barrier()

        with pytest.raises(RuntimeError) as ei:
            MPIRuntime(4).run(fn)
        err = ei.value
        assert set(err.rank_errors) == {1, 3}
        assert "thread rank-1" in str(err)
        assert "more rank(s) failed" in str(err)
        assert err.aborted_ranks == [0, 2]

    def test_comm_aborted_not_swallowed(self):
        """Secondary CommAborted casualties are named in the error."""

        def fn(comm):
            if comm.rank == 0:
                raise ValueError("primary")
            comm.barrier()

        with pytest.raises(RuntimeError, match="aborted") as ei:
            MPIRuntime(3).run(fn)
        assert ei.value.abort_origin == 0
        assert ei.value.aborted_ranks == [1, 2]

    def test_fault_point_noop_without_plan(self):
        def fn(comm):
            comm.fault_point(0)
            return comm.rank

        assert MPIRuntime(2).run(fn) == [0, 1]


class TestRetryWithBackoff:
    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise CommTimeout("transient")
            return "ok"

        seen = []
        out = retry_with_backoff(
            flaky,
            retries=3,
            base_delay=0.001,
            on_retry=lambda attempt, exc: seen.append(attempt),
        )
        assert out == "ok"
        assert len(calls) == 3
        assert seen == [0, 1]

    def test_exhausted_retries_raise(self):
        def always_fails():
            raise CommTimeout("permanent")

        with pytest.raises(CommTimeout):
            retry_with_backoff(always_fails, retries=2, base_delay=0.001)

    def test_unlisted_exception_not_retried(self):
        calls = []

        def fails():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_with_backoff(fails, retries=3, base_delay=0.001)
        assert len(calls) == 1

    def test_retry_recovers_probabilistic_drop(self):
        """End-to-end: a retried exchange survives a one-shot drop."""
        plan = FaultPlan().drop_messages(src=0, dst=1, nth=0)

        def fn(comm):
            if comm.rank == 0:
                for _ in range(2):
                    comm.send(np.arange(4), dest=1)
                return None

            def attempt():
                return comm.recv(0, timeout=0.3)

            return retry_with_backoff(attempt, retries=2, base_delay=0.01)

        out = MPIRuntime(2, fault_plan=plan).run(fn)
        np.testing.assert_array_equal(out[1], np.arange(4))


class TestSubCommunicatorAbort:
    def test_abort_breaks_sub_comm_barrier(self):
        """A failure must break barriers on split communicators too."""

        def fn(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            if comm.rank == 0:
                raise ValueError("die before sub barrier")
            sub.barrier()  # ranks 1..3 would deadlock without control sharing

        with pytest.raises(RuntimeError, match="rank 0"):
            MPIRuntime(4).run(fn)


class TestSdcFaultPrimitives:
    """The silent-data-corruption injection surface: in-memory bit
    flips, SHM transport corruption, on-disk bit-rot — all
    deterministic, all one-shot."""

    def test_flip_bits_builder_and_describe(self):
        plan = (
            FaultPlan(seed=3)
            .flip_bits(1, "mass", step=2, target="live")
            .flip_bits(0, "pos", step=1, nbits=3)
            .corrupt_shm(src=0, dst=1, nth=2, count=5)
            .rot_checkpoint(2, step=4, nbits=2)
        )
        assert not plan.empty
        text = plan.describe()
        assert "flip 1 bit(s) of 'mass' (live) on rank 1 at step 2" in text
        assert "flip 3 bit(s) of 'pos' (self_copy) on rank 0 at step 1" in text
        assert "corrupt_shm 0->1 messages [2, 7)" in text
        assert "rot 2 bit(s) of rank 2's checkpoint at step 4" in text

    def test_flip_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().flip_bits(0, "mass", step=0, nbits=0)
        with pytest.raises(ValueError):
            FaultPlan().flip_bits(0, "mass", step=0, target="ghost_copy")
        with pytest.raises(ValueError):
            FaultPlan().rot_checkpoint(0, step=0, nbits=0)

    def test_flip_and_rot_queries_filter(self):
        plan = (
            FaultPlan()
            .flip_bits(0, "mass", step=1, target="live")
            .flip_bits(0, "pos", step=1, target="self_copy")
            .rot_checkpoint(1, step=2)
        )
        assert len(plan.flip_events(0, 1)) == 2
        assert [f.array for f in plan.flip_events(0, 1, target="live")] == [
            "mass"
        ]
        assert plan.flip_events(1, 1) == []
        assert len(plan.rot_events(1, 2)) == 1
        assert plan.rot_events(1, 3) == []

    def test_fire_once(self):
        plan = FaultPlan()
        key = ("flip", 0, "mass", 1, "live")
        assert plan.fire_once(key)
        assert not plan.fire_once(key)
        assert plan.fire_once(("flip", 1, "mass", 1, "live"))

    def test_flip_array_bits_deterministic_and_in_place(self):
        a = np.ones(32)
        b = np.ones(32)
        bits_a = flip_array_bits(a, nbits=4, seed=11)
        bits_b = flip_array_bits(b, nbits=4, seed=11)
        assert bits_a == bits_b and len(bits_a) == 4
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, np.ones(32))
        # flipping the same bits again restores the original
        flip_array_bits(a, nbits=4, seed=11)
        np.testing.assert_array_equal(a, np.ones(32))

    def test_flip_array_bits_edge_cases(self):
        assert flip_array_bits(np.zeros(0), nbits=2, seed=0) == []
        with pytest.raises(ValueError):
            flip_array_bits(np.zeros(4), nbits=0)
        with pytest.raises(ValueError):
            flip_array_bits(np.zeros((4, 4)).T, nbits=1)
        tiny = np.zeros(1, dtype=np.uint8)
        assert len(flip_array_bits(tiny, nbits=64, seed=1)) == 8

    def test_flip_file_bits_deterministic(self, tmp_path):
        payload = bytes(range(64))
        fa, fb = tmp_path / "a.bin", tmp_path / "b.bin"
        fa.write_bytes(payload)
        fb.write_bytes(payload)
        bits_a = flip_file_bits(fa, nbits=3, seed=(9, 1))
        bits_b = flip_file_bits(fb, nbits=3, seed=(9, 1))
        assert bits_a == bits_b and len(bits_a) == 3
        assert fa.read_bytes() == fb.read_bytes() != payload
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        assert flip_file_bits(empty, nbits=1, seed=0) == []

    def test_apply_scheduled_flips_one_shot(self):
        plan = FaultPlan(seed=2).flip_bits(0, "mass", step=1, target="live")
        arrays = {"mass": np.ones(16), "pos": np.ones((16, 3))}
        assert apply_scheduled_flips(plan, 0, 1, arrays, target="live") == [
            "mass"
        ]
        damaged = arrays["mass"].copy()
        # a rollback replays step 1: the same rule must not strike twice
        assert apply_scheduled_flips(plan, 0, 1, arrays, target="live") == []
        np.testing.assert_array_equal(arrays["mass"], damaged)
        np.testing.assert_array_equal(arrays["pos"], np.ones((16, 3)))

    def test_apply_scheduled_flips_ignores_absent_and_other_targets(self):
        plan = (
            FaultPlan()
            .flip_bits(0, "ghost", step=1, target="live")
            .flip_bits(0, "mass", step=1, target="self_copy")
        )
        arrays = {"mass": np.ones(8)}
        assert apply_scheduled_flips(plan, 0, 1, arrays, target="live") == []
        np.testing.assert_array_equal(arrays["mass"], np.ones(8))
        assert apply_scheduled_flips(None, 0, 1, arrays) == []


class TestCorruptPayloadMatrix:
    @pytest.mark.parametrize(
        "dtype", [np.float64, np.float32, np.int64, np.uint8, np.complex128]
    )
    def test_dtypes(self, dtype):
        arr = np.ones(6, dtype=dtype)
        bad = corrupt_payload(arr)
        assert bad.dtype == arr.dtype and bad.shape == arr.shape
        assert not np.array_equal(bad, arr)
        np.testing.assert_array_equal(bad[1:], arr[1:])

    def test_multidimensional(self):
        arr = np.ones((3, 4), dtype=np.float64)
        bad = corrupt_payload(arr)
        assert bad.shape == arr.shape
        assert not np.array_equal(bad, arr)

    def test_zero_size_and_non_array(self):
        empty = np.zeros(0)
        assert corrupt_payload(empty) == "<corrupted payload>"
        assert corrupt_payload({"a": 1}) == "<corrupted payload>"

    def test_keyed_dict_targets_one_entry(self):
        msg = {"pos": np.ones((4, 3)), "step": 7}
        bad = corrupt_payload(msg, key="pos")
        assert bad["step"] == 7
        assert not np.array_equal(bad["pos"], msg["pos"])
        # the original payload is left untouched
        np.testing.assert_array_equal(msg["pos"], np.ones((4, 3)))

    def test_keyed_dict_missing_key_passes_through(self):
        msg = {"step": 7}
        assert corrupt_payload(msg, key="pos") is msg
        arr = np.ones(4)
        assert corrupt_payload(arr, key="pos") is arr
