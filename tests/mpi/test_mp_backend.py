"""The supervised multiprocess backend against *real* process faults.

Everything here crosses genuine OS process boundaries: ranks are
SIGKILLed mid-step (losing their in-flight queue buffers), heartbeats
stop because a process is frozen, the parent itself is killed.  The
assertions pin the tentpole contract: real deaths surface as the same
``PeerFailure``/``CommAborted`` errors the elastic recovery stack
already consumes, and no worker processes or SharedMemory segments
outlive the job, no matter which side dies first.
"""

from __future__ import annotations

import glob
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import numpy as np
import pytest

from repro.config import DomainConfig, PMConfig, SimulationConfig, TreePMConfig
from repro.mpi.faults import FaultPlan, PeerFailure
from repro.mpi.mp_backend import MultiprocessBackend
from repro.sim.elastic import run_elastic_simulation

pytestmark = [pytest.mark.faults, pytest.mark.timeout(300)]

N = 96
N_STEPS = 4
T_END = 0.04


def _cfg(n_ranks=3):
    return SimulationConfig(
        domain=DomainConfig(
            divisions=(n_ranks, 1, 1), sample_rate=0.3, cost_balance=False
        ),
        treepm=TreePMConfig(pm=PMConfig(mesh_size=16)),
    )


def _system(seed=5):
    rng = np.random.default_rng(seed)
    return (
        rng.random((N, 3)),
        rng.normal(scale=0.01, size=(N, 3)),
        np.full(N, 1.0 / N),
    )


def _assert_conserved(pos0, mom0, mass0, p, m, w):
    assert len(p) == len(pos0)
    assert w.sum() == pytest.approx(mass0.sum(), rel=1e-13)
    p_before = (mass0[:, None] * mom0).sum(axis=0)
    p_after = (w[:, None] * m).sum(axis=0)
    np.testing.assert_allclose(p_after, p_before, atol=1e-6)


def _shm_segments():
    return glob.glob("/dev/shm/rpmp*")


class TestSharedMemoryTransport:
    def test_large_arrays_round_trip_and_no_leak(self):
        before = set(_shm_segments())

        def spmd(comm):
            rng = np.random.default_rng(comm.rank)
            big = rng.standard_normal(40000)  # ~312 KiB, well past 64 KiB
            total = comm.allreduce(big)
            lists = comm.alltoall(
                [rng.standard_normal(20000) for _ in range(comm.size)],
                reliable=True,
            )
            return float(total.sum()), [float(a.sum()) for a in lists]

        runtime = MultiprocessBackend(3, recv_timeout=30.0)
        results = runtime.run(spmd)
        assert len(results) == 3
        assert len({r[0] for r in results}) == 1  # allreduce agrees
        assert set(_shm_segments()) <= before

    def test_liveness_report_after_clean_run(self):
        runtime = MultiprocessBackend(2, recv_timeout=30.0)
        runtime.run(lambda comm: comm.allreduce(1.0))
        rows = runtime.last_liveness
        assert [r["rank"] for r in rows] == [0, 1]
        assert all(r["done"] and not r["dead"] for r in rows)
        assert runtime.dead_ranks == []


class TestRealKillElasticMatrix:
    """Acceptance matrix: SIGKILL a live worker early / mid / late in
    the schedule, with the buddy alive and with the buddy dead too."""

    # step 0 is excluded here: a SIGKILL can land before the victim's
    # buddy copy left its queue-feeder buffer, and data that was never
    # replicated is honestly unrecoverable in memory — that case is
    # covered below with the disk checkpoint configured.  From step 1
    # on the copy is provably delivered (it is FIFO-ordered behind the
    # step-0 exchange traffic the victim already completed).
    @pytest.mark.parametrize("kill_step", [1, 2, 3], ids=["early", "mid", "late"])
    def test_sigkill_buddy_recovery(self, kill_step):
        pos, mom, mass = _system()
        plan = FaultPlan().kill_rank(1, kill_step)  # default: real SIGKILL
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=plan, recv_timeout=3.0, buddy_every=1,
            backend="multiprocess",
        )
        assert runtime.dead_ranks == [1]
        live = [r for r in runners if r is not None]
        assert len(live) == 2
        assert all(r.steps_taken == N_STEPS for r in live)
        assert all(e.mode == "buddy" for r in live for e in r.events)
        assert all(len(r.events) >= 1 for r in live)
        _assert_conserved(pos, mom, mass, p, m, w)
        # liveness: the kill was discovered, not announced
        row = runtime.last_liveness[1]
        assert row["dead"] and row["exitcode"] == -signal.SIGKILL
        assert "SIGKILL" in row["reason"]

    def test_sigkill_at_step_zero_with_checkpoint(self, tmp_path):
        """A death during initialization (before any replication is
        guaranteed delivered) must still recover — via the buddy copy
        when it made it out, via the initial disk checkpoint when not."""
        pos, mom, mass = _system()
        plan = FaultPlan().kill_rank(1, 0)
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=plan, recv_timeout=3.0, buddy_every=1,
            checkpoint_dir=tmp_path, checkpoint_every=1,
            backend="multiprocess",
        )
        assert runtime.dead_ranks == [1]
        live = [r for r in runners if r is not None]
        assert all(r.steps_taken == N_STEPS for r in live)
        assert live[0].events[0].mode in ("buddy", "disk")
        _assert_conserved(pos, mom, mass, p, m, w)

    def test_sigkill_owner_and_buddy_disk_fallback(self, tmp_path):
        pos, mom, mass = _system()
        # rank 2 holds rank 1's buddy copy (ring successor); killing
        # both at the same step forces the disk-checkpoint fallback
        plan = FaultPlan().kill_rank(1, 2).kill_rank(2, 2)
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(4), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=plan, recv_timeout=3.0, buddy_every=1,
            checkpoint_dir=tmp_path, checkpoint_every=1,
            backend="multiprocess",
        )
        assert sorted(runtime.dead_ranks) == [1, 2]
        live = [r for r in runners if r is not None]
        assert len(live) == 2
        assert all(r.steps_taken == N_STEPS for r in live)
        assert any(e.mode == "disk" for e in live[0].events)
        _assert_conserved(pos, mom, mass, p, m, w)

    def test_announced_death_when_real_false(self):
        pos, mom, mass = _system()
        plan = FaultPlan().kill_rank(1, 2, real=False)
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=plan, recv_timeout=3.0, buddy_every=1,
            backend="multiprocess",
        )
        assert runtime.dead_ranks == [1]
        row = runtime.last_liveness[1]
        assert row["dead"] and row["exitcode"] == 21  # DEATH_EXIT_CODE
        # the death was announced by the worker itself, not discovered
        assert "fault plan" in row["reason"]
        _assert_conserved(pos, mom, mass, p, m, w)


class TestNonElasticFailures:
    def test_sigkill_aborts_non_elastic_job(self):
        def spmd(comm):
            for step in range(50):
                comm.fault_point(step)
                comm.allreduce(float(step))
                time.sleep(0.01)
            return "done"

        runtime = MultiprocessBackend(
            2, fault_plan=FaultPlan().kill_rank(1, 3), recv_timeout=10.0
        )
        with pytest.raises(RuntimeError) as exc_info:
            runtime.run(spmd)
        assert "rank 1" in str(exc_info.value)
        assert "SIGKILL" in str(exc_info.value)
        assert not _shm_segments()

    def test_worker_exception_carries_rank_errors(self):
        def spmd(comm):
            if comm.rank == 1:
                raise ValueError("boom on rank 1")
            comm.barrier()
            return comm.rank

        runtime = MultiprocessBackend(2, recv_timeout=10.0)
        with pytest.raises(RuntimeError) as exc_info:
            runtime.run(spmd)
        errors = exc_info.value.rank_errors
        assert 1 in errors
        assert "boom on rank 1" in str(errors[1])


class TestHeartbeatLiveness:
    def test_frozen_process_is_detected_and_killed(self):
        """SIGSTOP freezes a worker (heartbeat thread included): the
        supervisor must declare it dead via heartbeat age and SIGKILL
        it, and the peer must see an ordinary PeerFailure."""

        def spmd(comm):
            try:
                for step in range(2000):
                    comm.barrier()
                    time.sleep(0.01)
            except PeerFailure as exc:
                return ("peer-dead", sorted(exc.dead_ranks))
            return ("finished", [])

        runtime = MultiprocessBackend(
            2, recv_timeout=60.0, elastic=True,
            suspect_timeout=0.3, heartbeat_timeout=1.5,
        )
        box = {}

        def _freeze():
            deadline = time.time() + 30.0
            while time.time() < deadline:
                sup = runtime._supervisor
                if sup is not None and sup.processes[1].pid is not None:
                    if sup.job.hb_board[1] > 0.0:  # beating: fully started
                        time.sleep(0.3)
                        box["pid"] = sup.processes[1].pid
                        os.kill(sup.processes[1].pid, signal.SIGSTOP)
                        return
                time.sleep(0.02)

        killer = threading.Thread(target=_freeze, daemon=True)
        killer.start()
        results = runtime.run(spmd)
        killer.join(timeout=5.0)
        assert "pid" in box, "never saw the worker start beating"
        assert results[1] is None  # dead rank
        assert results[0] == ("peer-dead", [1])
        row = runtime.last_liveness[1]
        assert row["dead"]
        assert "no heartbeat" in row["reason"]
        assert runtime.dead_ranks == [1]


_ORPHAN_DRIVER = textwrap.dedent(
    """
    import os, sys, threading, time
    sys.path.insert(0, {src!r})
    from repro.mpi.mp_backend import MultiprocessBackend

    def spmd(comm):
        time.sleep(60.0)
        return comm.rank

    runtime = MultiprocessBackend(2, recv_timeout=120.0)
    t = threading.Thread(target=runtime.run, args=(spmd,), daemon=True)
    t.start()
    while runtime._supervisor is None or any(
        p.pid is None for p in runtime._supervisor.processes
    ):
        time.sleep(0.01)
    sup = runtime._supervisor
    print("READY", sup.job.shm_prefix, *[p.pid for p in sup.processes],
          flush=True)
    time.sleep(120.0)
    """
)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _wait_gone(pids, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if not any(_pid_alive(p) for p in pids):
            return True
        time.sleep(0.1)
    return False


class TestNoOrphans:
    """Satellite: whichever side dies, nothing must outlive the job."""

    def _launch_driver(self):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", _ORPHAN_DRIVER.format(src=os.path.abspath(src))],
            stdout=subprocess.PIPE, text=True,
        )
        line = proc.stdout.readline().split()
        assert line and line[0] == "READY", f"driver failed: {line}"
        prefix, pids = line[1], [int(p) for p in line[2:]]
        assert len(pids) == 2
        return proc, prefix, pids

    def test_parent_sigkill_reaps_workers(self):
        proc, prefix, pids = self._launch_driver()
        try:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10.0)
            # the workers' parent-pid watch must notice and self-exit
            assert _wait_gone(pids), f"workers outlived SIGKILLed parent: {pids}"
            assert not glob.glob(f"/dev/shm/{prefix}*")
        finally:
            for p in pids:
                if _pid_alive(p):
                    os.kill(p, signal.SIGKILL)

    def test_parent_sigterm_cleans_up(self):
        proc, prefix, pids = self._launch_driver()
        try:
            os.kill(proc.pid, signal.SIGTERM)
            proc.wait(timeout=10.0)
            assert _wait_gone(pids), f"workers outlived SIGTERMed parent: {pids}"
            assert not glob.glob(f"/dev/shm/{prefix}*")
        finally:
            for p in pids:
                if _pid_alive(p):
                    os.kill(p, signal.SIGKILL)

    def test_normal_exit_leaves_nothing(self):
        runtime = MultiprocessBackend(2, recv_timeout=30.0)
        runtime.run(lambda comm: comm.allgather(np.ones(30000)) and None)
        sup = runtime._supervisor
        assert not any(p.is_alive() for p in sup.processes)
        assert not glob.glob(f"/dev/shm/{sup.job.shm_prefix}*")
