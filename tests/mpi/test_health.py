"""Gray-failure health layer: monitor verdicts, adaptive deadlines,
degradation policy, gray fault injection, and jittered backoff.

All monitor tests feed explicit (rank, work-seconds) samples — the unit
under test is the pure verdict function, not the timing source — and
assert that verdicts are deterministic across independently constructed
monitors (detection must be collective without an agreement round).
"""

from __future__ import annotations

import errno

import numpy as np
import pytest

from repro.config import HealthConfig
from repro.mpi.faults import FaultPlan, backoff_delays, retry_with_backoff
from repro.mpi.health import (
    AdaptiveDeadline,
    DegradationPolicy,
    HealthEvent,
    HealthMonitor,
    StragglerEvicted,
)
from repro.mpi.faults import RankDeath


def _cfg(**kw):
    base = dict(
        policy="monitor",
        straggler_factor=3.0,
        straggler_patience=2,
        min_samples=2,
    )
    base.update(kw)
    return HealthConfig(**base)


def _fleet(slow_rank=None, slow=1.0, n=4, base=0.1):
    """One step's (rank, work-seconds) samples."""
    return [
        (r, slow if r == slow_rank else base) for r in range(n)
    ]


class TestHealthConfig:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            HealthConfig(policy="panic")

    def test_enabled_property(self):
        assert not HealthConfig().enabled
        assert HealthConfig(policy="monitor").enabled

    def test_excluded_from_config_hash(self):
        from repro.config import SimulationConfig

        a = SimulationConfig()
        b = SimulationConfig(health=HealthConfig(policy="evict"))
        assert a.config_hash() == b.config_hash()


class TestHealthMonitor:
    def test_suspect_then_confirm_after_patience(self):
        mon = HealthMonitor(_cfg(), world_rank=0)
        assert mon.observe(1, _fleet(slow_rank=2, slow=1.0)) is None
        kinds = [ev.kind for ev in mon.events]
        assert kinds == ["straggler_suspect"]
        assert mon.observe(2, _fleet(slow_rank=2, slow=1.0)) == 2
        kinds = [ev.kind for ev in mon.events]
        assert kinds == ["straggler_suspect", "straggler_confirmed"]
        assert all(ev.rank == 2 for ev in mon.events)

    def test_healthy_fleet_never_confirms(self):
        mon = HealthMonitor(_cfg(), world_rank=0)
        for step in range(1, 20):
            assert mon.observe(step, _fleet()) is None
        assert mon.events == []

    def test_streak_resets_on_healthy_step(self):
        mon = HealthMonitor(_cfg(straggler_patience=3), world_rank=0)
        mon.observe(1, _fleet(slow_rank=1, slow=1.0))
        mon.observe(2, _fleet(slow_rank=1, slow=1.0))
        mon.observe(3, _fleet())  # back under threshold: streak resets
        assert "recovered" in [ev.kind for ev in mon.events]
        assert mon.observe(4, _fleet(slow_rank=1, slow=1.0)) is None

    def test_no_repeat_confirmation_while_still_slow(self):
        mon = HealthMonitor(_cfg(), world_rank=0)
        mon.observe(1, _fleet(slow_rank=0, slow=1.0))
        assert mon.observe(2, _fleet(slow_rank=0, slow=1.0)) == 0
        for step in range(3, 8):
            assert mon.observe(step, _fleet(slow_rank=0, slow=1.0)) is None

    def test_lowest_rank_wins_when_two_confirm_together(self):
        mon = HealthMonitor(_cfg(), world_rank=0)
        samples = [(0, 0.1), (1, 5.0), (2, 0.1), (3, 5.0), (4, 0.1)]
        mon.observe(1, samples)
        assert mon.observe(2, samples) == 1

    def test_verdicts_deterministic_across_ranks(self):
        mons = [HealthMonitor(_cfg(), world_rank=r) for r in range(3)]
        for step in range(1, 5):
            verdicts = {
                m.observe(step, _fleet(slow_rank=2, slow=1.0)) for m in mons
            }
            assert len(verdicts) == 1  # identical on every rank
        a, b, c = ([ev.as_dict() for ev in m.events] for m in mons)
        assert a == b == c

    def test_score_degrades_with_slowdown_and_beat_age(self):
        mon = HealthMonitor(_cfg(), world_rank=0)
        mon.observe(1, _fleet(slow_rank=1, slow=1.0))
        assert mon.score(1) < mon.score(0) == 1.0
        before = mon.score(1)
        mon.record_beat_age(1, 10.0)
        assert mon.score(1) < before
        assert set(mon.scores()) == {0, 1, 2, 3}


class TestAdaptiveDeadline:
    def test_none_until_min_samples(self):
        dl = AdaptiveDeadline(_cfg(min_samples=3))
        dl.observe(0.1)
        dl.observe(0.1)
        assert dl.deadline() is None
        dl.observe(0.1)
        assert dl.deadline() is not None

    def test_scales_with_observed_distribution(self):
        cfg = _cfg(
            min_samples=2, deadline_factor=10.0,
            deadline_floor=1e-9, deadline_ceil=1e9,
        )
        dl = AdaptiveDeadline(cfg)
        for _ in range(8):
            dl.observe(0.5)
        assert dl.deadline() == pytest.approx(5.0)

    def test_clamped_to_floor_and_ceil(self):
        cfg = _cfg(min_samples=1, deadline_floor=2.0, deadline_ceil=4.0)
        dl = AdaptiveDeadline(cfg)
        dl.observe(1e-6)
        assert dl.deadline() == 2.0
        for _ in range(64):
            dl.observe(100.0)
        assert dl.deadline() == 4.0


class TestDegradationPolicy:
    def test_stretch_grows_within_declared_bound(self):
        pol = DegradationPolicy(_cfg(audit_stretch_max=4), world_rank=0)
        assert pol.audit_stretch == 1 and not pol.active
        pol.escalate(1, 0, "pressure")
        assert pol.audit_stretch == 2
        pol.escalate(2, 0, "pressure")
        assert pol.audit_stretch == 4
        pol.escalate(3, 0, "pressure")
        assert pol.audit_stretch == 4  # bounded, never "disable audits"

    def test_skip_derived_at_level_two(self):
        pol = DegradationPolicy(_cfg(), world_rank=0)
        pol.escalate(1, 0, "x")
        assert not pol.skip_derived
        pol.escalate(2, 0, "x")
        assert pol.skip_derived

    def test_relax_lowers_level(self):
        pol = DegradationPolicy(_cfg(), world_rank=0)
        pol.escalate(1, 0, "x")
        pol.relax(2, 0, "pressure cleared")
        assert pol.level == 0
        pol.relax(3, 0, "again")  # idempotent at the floor
        assert pol.level == 0

    def test_transitions_emit_structured_events(self):
        pol = DegradationPolicy(_cfg(), world_rank=1)
        pol.escalate(5, 3, "tolerating straggler")
        kinds = [ev.kind for ev in pol.events]
        assert kinds[:2] == ["degrade_enter", "audit_stretch"]
        assert pol.events[0].step == 5 and pol.events[0].rank == 3
        row = pol.events[0].as_dict()
        assert row["kind"] == "degrade_enter" and row["data"]["level"] == 1.0

    def test_failing_kernel_emits_native_fallback(self, monkeypatch):
        from repro.native import update

        if not update.available():
            pytest.skip("native update kernel unavailable")
        monkeypatch.setattr(update, "_self_test", lambda lib: False)
        pol = DegradationPolicy(_cfg(), world_rank=0)
        results = pol.recheck_kernels(7)
        assert results.get("update") is False
        assert update.get_lib() is None  # gate flipped: numpy fallback
        falls = [ev for ev in pol.events if ev.kind == "native_fallback"]
        assert len(falls) == 1 and "update" in falls[0].detail
        pol.recheck_kernels(8)  # only reported once
        assert len(
            [ev for ev in pol.events if ev.kind == "native_fallback"]
        ) == 1
        # restore the gate for the rest of the session
        monkeypatch.undo()
        update._verified.clear()
        assert update.available()


class TestStragglerEvicted:
    def test_is_announced_rank_death(self):
        assert issubclass(StragglerEvicted, RankDeath)


class TestGrayFaultInjection:
    def test_slow_rank_delay_window_and_one_shot(self):
        plan = FaultPlan().slow_rank(2, factor=10.0, duration=2,
                                     start_step=3, base=0.05)
        assert plan.slow_delay(1, 3) == 0.0
        assert plan.slow_delay(2, 2) == 0.0
        assert plan.slow_delay(2, 3) == pytest.approx(0.45)
        assert plan.slow_delay(2, 3) == 0.0  # one-shot: replay pays nothing
        assert plan.slow_delay(2, 4) == pytest.approx(0.45)
        assert plan.slow_delay(2, 5) == 0.0  # window closed

    def test_degrade_collective_matches_op_and_rank(self):
        plan = FaultPlan().degrade_collective("allreduce", 0.2, rank=1)
        assert plan.collective_delay(0, "allreduce", 1) == 0.0
        assert plan.collective_delay(1, "bcast", 1) == 0.0
        assert plan.collective_delay(1, "allreduce", 1) == pytest.approx(0.2)
        assert plan.collective_delay(1, "allreduce", 1) == 0.0  # one-shot

    def test_disk_full_raises_enospc_once_per_rank(self):
        plan = FaultPlan().disk_full(path="ckpt", after_bytes=100)
        plan.check_disk(0, "/tmp/ckpt/a", 60)
        with pytest.raises(OSError) as exc_info:
            plan.check_disk(0, "/tmp/ckpt/b", 60)
        assert exc_info.value.errno == errno.ENOSPC
        plan.check_disk(0, "/tmp/ckpt/c", 10**9)  # transient: cleared
        plan.check_disk(1, "/tmp/other/a", 10**9)  # path filter

    def test_describe_lists_gray_rules(self):
        plan = (
            FaultPlan()
            .slow_rank(1, factor=4.0)
            .degrade_collective("*", 0.1)
            .disk_full(after_bytes=10)
        )
        text = plan.describe()
        assert "slow" in text and "degrade" in text and "disk" in text


class TestBackoffJitter:
    def test_deterministic_per_seed(self):
        a = backoff_delays(6, 0.01, 2.0, 1.0, True, seed=(0, 7))
        b = backoff_delays(6, 0.01, 2.0, 1.0, True, seed=(0, 7))
        assert a == b

    def test_schedules_diverge_across_ranks(self):
        """Regression: N ranks retrying the same transient must not
        sleep in lock-step (retry storms re-collide otherwise)."""
        schedules = [
            backoff_delays(6, 0.01, 2.0, 1.0, True, seed=(rank, 3))
            for rank in range(4)
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert schedules[i] != schedules[j]

    def test_max_delay_cap_holds(self):
        for delays in (
            backoff_delays(50, 0.01, 2.0, 0.25, True, seed=1),
            backoff_delays(50, 0.01, 2.0, 0.25, False),
        ):
            assert all(d <= 0.25 + 1e-12 for d in delays)
            assert all(d >= 0.0 for d in delays)

    def test_unjittered_schedule_is_exponential(self):
        assert backoff_delays(4, 0.1, 2.0, 10.0, False) == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
        ]

    def test_retry_with_backoff_uses_seeded_schedule(self, monkeypatch):
        import repro.mpi.faults as faults_mod

        slept = []
        monkeypatch.setattr(faults_mod.time, "sleep", slept.append)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 4:
                raise RuntimeError("transient")
            return "ok"

        out = retry_with_backoff(
            flaky, retries=5, base_delay=0.01, seed=(2, 9),
            exceptions=(RuntimeError,),
        )
        assert out == "ok"
        assert slept == backoff_delays(5, 0.01, seed=(2, 9))[: len(slept)]
        assert len(slept) == 3

    def test_exhausted_retries_reraise(self):
        def always_fails():
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            retry_with_backoff(
                always_fails, retries=2, base_delay=0.0,
                exceptions=(RuntimeError,),
            )


class TestHealthEvent:
    def test_as_dict_round_trip(self):
        ev = HealthEvent(step=3, rank=1, kind="drain", detail="d",
                         data={"x": 1.0})
        assert ev.as_dict() == {
            "step": 3, "rank": 1, "kind": "drain", "detail": "d",
            "data": {"x": 1.0},
        }
