"""Tests of the non-blocking point-to-point API (paper footnote 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.comm import Request
from repro.mpi.runtime import run_spmd


class TestIsendIrecv:
    def test_basic_roundtrip(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(5), dest=1, tag=3)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=3)
            return req.wait()

        out = run_spmd(2, fn)
        np.testing.assert_array_equal(out[1], np.arange(5))

    def test_test_polls_without_blocking(self):
        def fn(comm):
            if comm.rank == 0:
                comm.barrier()  # let rank 1 poll first
                comm.isend("payload", dest=1)
                comm.barrier()
                return None
            req = comm.irecv(source=0)
            done_before, _ = req.test()
            comm.barrier()  # now rank 0 sends
            comm.barrier()
            done_after, payload = req.test()
            return done_before, done_after, payload

        out = run_spmd(2, fn)
        before, after, payload = out[1]
        assert before is False
        assert after is True
        assert payload == "payload"

    def test_wait_idempotent(self):
        def fn(comm):
            if comm.rank == 0:
                comm.isend(42, dest=1)
                return None
            req = comm.irecv(source=0)
            return req.wait(), req.wait(), req.test()

        out = run_spmd(2, fn)
        v1, v2, (done, v3) = out[1]
        assert v1 == v2 == v3 == 42
        assert done

    def test_waitall_many_senders(self):
        """The footnote's scenario in miniature: one receiver posts a
        receive per sender and completes them all."""

        def fn(comm):
            if comm.rank == 0:
                reqs = [
                    comm.irecv(source=s, tag=s) for s in range(1, comm.size)
                ]
                vals = Request.waitall(reqs)
                return sorted(vals)
            comm.isend(comm.rank * 10, dest=0, tag=comm.rank)
            return None

        out = run_spmd(6, fn)
        assert out[0] == [10, 20, 30, 40, 50]

    def test_tag_mismatch_detected(self):
        def fn(comm):
            if comm.rank == 0:
                comm.isend(1, dest=1, tag=5)
            else:
                comm.irecv(source=0, tag=7).wait()

        with pytest.raises(RuntimeError, match="tag mismatch|rank"):
            run_spmd(2, fn)

    def test_traffic_still_recorded(self):
        from repro.mpi.runtime import MPIRuntime

        rt = MPIRuntime(2)

        def fn(comm):
            comm.traffic_phase("nb")
            if comm.rank == 0:
                comm.isend(np.zeros(16), dest=1)
            else:
                comm.irecv(source=0).wait()
            comm.barrier()

        rt.run(fn)
        assert rt.traffic.phase("nb").total_bytes == 128
