"""SharedMemory transport frame integrity (multiprocess backend).

Every out-of-band SHM frame carries a CRC32 computed at send time; the
receiver re-checks it before trusting the bytes.  A frame corrupted in
flight (the ``corrupt_shm`` fault) must be *dropped* — surfacing as a
recv timeout the recovery machinery understands — never delivered as
silently wrong data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.faults import CommTimeout, FaultPlan
from repro.mpi.mp_backend import MultiprocessBackend, has_shm_frames

pytestmark = [pytest.mark.faults, pytest.mark.timeout(120)]


def test_corrupted_frame_dropped_clean_frame_delivered():
    plan = FaultPlan(seed=5).corrupt_shm(src=0, dst=1, nth=0)
    backend = MultiprocessBackend(
        2, fault_plan=plan, recv_timeout=2.0, shm_threshold=256
    )

    def spmd(comm):
        big = np.arange(4096, dtype=np.float64)
        if comm.rank == 0:
            comm.send(big, 1, tag=7)       # sabotaged frame
            comm.send(big * 2, 1, tag=8)   # clean frame
            return ("sender", 0, 0.0)
        try:
            comm.recv(0, tag=7, timeout=2.0)
            outcome = "delivered"
        except CommTimeout:
            outcome = "dropped"
        clean = comm.recv(0, tag=8, timeout=10.0)
        return (outcome, int(comm.shm_crc_failures), float(clean[1]))

    sender, receiver = backend.run(spmd)
    outcome, crc_failures, probe = receiver
    assert outcome == "dropped"
    assert crc_failures == 1
    assert probe == 2.0  # the clean frame after the bad one is intact


def test_small_messages_bypass_shm_and_survive():
    # below shm_threshold the payload rides the pipe, which the
    # corrupt_shm rule cannot touch: delivery must succeed
    plan = FaultPlan(seed=5).corrupt_shm(src=0, dst=1, nth=0, count=100)
    backend = MultiprocessBackend(
        2, fault_plan=plan, recv_timeout=2.0, shm_threshold=1 << 20
    )

    def spmd(comm):
        small = np.arange(16, dtype=np.float64)
        if comm.rank == 0:
            comm.send(small, 1, tag=3)
            return None
        got = comm.recv(0, tag=3, timeout=5.0)
        return (int(comm.shm_crc_failures), float(got.sum()))

    _, receiver = backend.run(spmd)
    assert receiver == (0, float(np.arange(16).sum()))


def test_control_traffic_does_not_consume_frame_window():
    # corrupt_shm counts SHM *frames*, not messages: array-free control
    # messages sent first must not use up the nth=0 slot, so the first
    # frame-carrying message is still the one sabotaged
    plan = FaultPlan(seed=5).corrupt_shm(src=0, dst=1, nth=0, count=1)
    backend = MultiprocessBackend(
        2, fault_plan=plan, recv_timeout=2.0, shm_threshold=256
    )

    def spmd(comm):
        big = np.arange(4096, dtype=np.float64)
        if comm.rank == 0:
            comm.send("prelude", 1, tag=1)
            comm.send((None, {"step": 3}), 1, tag=2)
            comm.send(big, 1, tag=7)
            return None
        assert comm.recv(0, tag=1, timeout=5.0) == "prelude"
        assert comm.recv(0, tag=2, timeout=5.0) == (None, {"step": 3})
        try:
            comm.recv(0, tag=7, timeout=2.0)
            outcome = "delivered"
        except CommTimeout:
            outcome = "dropped"
        return (outcome, int(comm.shm_crc_failures))

    _, receiver = backend.run(spmd)
    assert receiver == ("dropped", 1)


def test_has_shm_frames_predicate():
    big = np.arange(64, dtype=np.float64)  # 512 bytes
    assert has_shm_frames(big, 256)
    assert has_shm_frames((big, "meta"), 256)
    assert has_shm_frames({"pos": big}, 256)
    assert has_shm_frames([{"pos": (big,)}], 256)
    assert not has_shm_frames(big, 1024)            # below threshold
    assert not has_shm_frames(None, 1)
    assert not has_shm_frames(("a", 3, {"k": 1.0}), 1)
    assert not has_shm_frames(np.empty(0), 1)       # empty stays inline
    assert not has_shm_frames(
        np.array([{"o": 1}], dtype=object), 1       # object dtype inline
    )
