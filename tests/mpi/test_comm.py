"""Tests of the SPMD runtime and communicator collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.runtime import MPIRuntime, run_spmd

SIZES = [1, 2, 4, 7, 8]


class TestRuntime:
    def test_rank_identity(self):
        out = run_spmd(4, lambda comm: (comm.rank, comm.size))
        assert out == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_single_rank_runs_inline(self):
        out = run_spmd(1, lambda comm: comm.rank)
        assert out == [0]

    def test_exception_propagates(self):
        def fn(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.barrier()  # would deadlock without abort handling

        with pytest.raises(RuntimeError, match="rank 2"):
            run_spmd(4, fn)

    def test_exception_while_peer_recv_blocked(self):
        def fn(comm):
            if comm.rank == 0:
                raise ValueError("fail before send")
            comm.recv(0)

        with pytest.raises(RuntimeError, match="rank 0"):
            run_spmd(2, fn)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            MPIRuntime(0)
        with pytest.raises(ValueError):
            MPIRuntime(4, torus_shape=(3, 1, 1))


class TestPointToPoint:
    def test_send_recv_array(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(10), dest=1, tag=7)
                return None
            return comm.recv(0, tag=7)

        out = run_spmd(2, fn)
        np.testing.assert_array_equal(out[1], np.arange(10))

    def test_send_copies_buffers(self):
        """Mutating the sent array after send must not affect receiver."""

        def fn(comm):
            if comm.rank == 0:
                a = np.zeros(4)
                comm.send(a, dest=1)
                a[:] = 99.0
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(0)

        out = run_spmd(2, fn)
        np.testing.assert_array_equal(out[1], np.zeros(4))

    def test_tag_mismatch_raises(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(1, dest=1, tag=5)
            else:
                comm.recv(0, tag=6)

        with pytest.raises(RuntimeError, match="tag mismatch|rank"):
            run_spmd(2, fn)

    def test_sendrecv_ring(self):
        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        out = run_spmd(5, fn)
        assert out == [4, 0, 1, 2, 3]

    def test_invalid_ranks(self):
        def fn(comm):
            comm.send(1, dest=99)

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)


class TestCollectives:
    @pytest.mark.parametrize("size", SIZES)
    def test_bcast(self, size):
        def fn(comm):
            data = {"v": 42} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        out = run_spmd(size, fn)
        assert all(o == {"v": 42} for o in out)

    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("root", [0, -1])
    def test_bcast_nonzero_root(self, size, root):
        root = root % size

        def fn(comm):
            return comm.bcast(comm.rank if comm.rank == root else None, root=root)

        assert run_spmd(size, fn) == [root] * size

    @pytest.mark.parametrize("size", SIZES)
    def test_reduce_sum(self, size):
        def fn(comm):
            return comm.reduce(comm.rank + 1, op="sum", root=0)

        out = run_spmd(size, fn)
        assert out[0] == size * (size + 1) // 2
        assert all(o is None for o in out[1:])

    @pytest.mark.parametrize("op,expected", [("max", 7), ("min", 1), ("sum", 16)])
    def test_reduce_ops(self, op, expected):
        values = [3, 7, 1, 5]

        def fn(comm):
            return comm.reduce(values[comm.rank], op=op, root=0)

        assert run_spmd(4, fn)[0] == expected

    @pytest.mark.parametrize("size", SIZES)
    def test_allreduce_array(self, size):
        def fn(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), op="sum")

        out = run_spmd(size, fn)
        expected = np.full(3, sum(range(size)), dtype=float)
        for o in out:
            np.testing.assert_array_equal(o, expected)

    @pytest.mark.parametrize("size", SIZES)
    def test_gather(self, size):
        def fn(comm):
            return comm.gather(comm.rank**2, root=0)

        out = run_spmd(size, fn)
        assert out[0] == [r**2 for r in range(size)]

    @pytest.mark.parametrize("size", SIZES)
    def test_allgather(self, size):
        def fn(comm):
            return comm.allgather(comm.rank)

        out = run_spmd(size, fn)
        assert all(o == list(range(size)) for o in out)

    @pytest.mark.parametrize("size", SIZES)
    def test_scatter(self, size):
        def fn(comm):
            objs = [10 * r for r in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        assert run_spmd(size, fn) == [10 * r for r in range(size)]

    def test_scatter_requires_full_list(self):
        def fn(comm):
            return comm.scatter([1] if comm.rank == 0 else None, root=0)

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)

    @pytest.mark.parametrize("size", SIZES)
    def test_alltoall(self, size):
        def fn(comm):
            objs = [f"{comm.rank}->{d}" for d in range(comm.size)]
            return comm.alltoall(objs)

        out = run_spmd(size, fn)
        for r, received in enumerate(out):
            assert received == [f"{s}->{r}" for s in range(size)]

    @pytest.mark.parametrize("size", SIZES)
    def test_alltoallv_ragged_arrays(self, size):
        def fn(comm):
            sends = [
                np.full(d + 1, comm.rank * 100 + d, dtype=np.float64)
                for d in range(comm.size)
            ]
            return comm.alltoallv(sends)

        out = run_spmd(size, fn)
        for r, received in enumerate(out):
            for s, arr in enumerate(received):
                np.testing.assert_array_equal(
                    arr, np.full(r + 1, s * 100 + r, dtype=np.float64)
                )

    def test_barrier_synchronizes(self):
        """After a barrier, all pre-barrier sends are observable."""
        import time

        def fn(comm):
            if comm.rank == 0:
                time.sleep(0.02)
                comm.send(np.array([1.0]), dest=1)
            comm.barrier()
            if comm.rank == 1:
                return comm.recv(0)[0]
            return None

        assert run_spmd(2, fn)[1] == 1.0


class TestSplit:
    def test_split_even_odd(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2)
            return (sub.rank, sub.size)

        out = run_spmd(6, fn)
        for r, (sr, ss) in enumerate(out):
            assert ss == 3
            assert sr == r // 2

    def test_split_with_none_color(self):
        def fn(comm):
            sub = comm.split(color=0 if comm.rank < 2 else None)
            return None if sub is None else sub.size

        out = run_spmd(5, fn)
        assert out == [2, 2, None, None, None]

    def test_split_key_reorders(self):
        def fn(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        out = run_spmd(4, fn)
        assert out == [3, 2, 1, 0]

    def test_subcomm_collectives_independent(self):
        def fn(comm):
            sub = comm.split(color=comm.rank // 2)
            return sub.allreduce(comm.rank, op="sum")

        out = run_spmd(4, fn)
        assert out == [1, 1, 5, 5]

    def test_nested_split(self):
        def fn(comm):
            sub = comm.split(color=comm.rank // 4)
            subsub = sub.split(color=sub.rank // 2)
            return (sub.size, subsub.size, subsub.rank)

        out = run_spmd(8, fn)
        assert all(o[0] == 4 and o[1] == 2 for o in out)

    def test_repeated_splits_dont_collide(self):
        def fn(comm):
            a = comm.split(color=comm.rank % 2)
            b = comm.split(color=comm.rank % 2)
            return a.allreduce(1) + b.allreduce(1)

        out = run_spmd(4, fn)
        assert out == [4, 4, 4, 4]

    def test_world_rank_preserved_through_split(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2)
            return sub.world_rank

        out = run_spmd(4, fn)
        assert out == [0, 1, 2, 3]
