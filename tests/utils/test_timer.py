"""Tests for Timer and TimingLedger."""

from __future__ import annotations

import time

import pytest

from repro.utils.timer import Timer, TimingLedger


class TestTimer:
    def test_measures_elapsed(self):
        t = Timer().start()
        time.sleep(0.01)
        elapsed = t.stop()
        assert elapsed >= 0.009

    def test_accumulates_over_restarts(self):
        t = Timer()
        t.start(); t.stop()
        first = t.elapsed
        t.start(); t.stop()
        assert t.elapsed >= first

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer().start()
        t.stop()
        t.reset()
        assert t.elapsed == 0.0
        assert not t.running


class TestTimingLedger:
    def test_phase_accumulates(self):
        led = TimingLedger()
        with led.phase("PP/force calculation"):
            time.sleep(0.005)
        with led.phase("PP/force calculation"):
            time.sleep(0.005)
        assert led.get("PP/force calculation") >= 0.009

    def test_hierarchical_totals(self):
        led = TimingLedger()
        led.add("PP/tree construction", 1.0)
        led.add("PP/force calculation", 2.0)
        led.add("PM/FFT", 4.0)
        assert led.total("PP") == pytest.approx(3.0)
        assert led.total("PM") == pytest.approx(4.0)
        assert led.total() == pytest.approx(7.0)

    def test_prefix_does_not_match_partial_names(self):
        led = TimingLedger()
        led.add("PP/x", 1.0)
        led.add("PPX/y", 2.0)
        assert led.total("PP") == pytest.approx(1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimingLedger().add("x", -1.0)

    def test_merge_and_scale(self):
        a, b = TimingLedger(), TimingLedger()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.get("x") == pytest.approx(3.0)
        s = a.scaled(2.0)
        assert s.get("y") == pytest.approx(6.0)
        assert a.get("y") == pytest.approx(3.0)  # original untouched

    def test_report_contains_phases(self):
        led = TimingLedger()
        led.add("PP/force calculation", 1.5)
        led.add("PM/FFT", 0.5)
        rep = led.report("step")
        assert "force calculation" in rep
        assert "PM" in rep
        assert "Total" in rep
