"""The shared array-integrity helpers every persistence/replication
layer digests through, and the partition-independent particle
fingerprint the SDC live-state audit compares against its run-start
reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.faults import flip_array_bits
from repro.utils.integrity import (
    array_digest,
    digest_arrays,
    fingerprint_particles,
)


class TestArrayDigest:
    def test_layout_independent(self):
        a = np.arange(24, dtype=np.float64).reshape(4, 6)
        assert array_digest(a) == array_digest(np.ascontiguousarray(a))
        # a transposed view hashes like its contiguous copy
        t = a.T
        assert array_digest(t) == array_digest(np.ascontiguousarray(t))
        # but not like the differently-shaped original
        assert array_digest(t) != array_digest(a)

    def test_dtype_and_shape_matter(self):
        a = np.zeros(8, dtype=np.float64)
        assert array_digest(a) != array_digest(a.astype(np.float32))
        assert array_digest(a) != array_digest(a.reshape(2, 4))

    def test_zero_length(self):
        assert array_digest(np.zeros(0)) == array_digest(np.zeros(0))
        assert array_digest(np.zeros(0)) != array_digest(
            np.zeros(0, dtype=np.int64)
        )

    def test_single_bit_sensitivity(self):
        a = np.ones(16)
        before = array_digest(a)
        flip_array_bits(a, nbits=1, seed=3)
        assert array_digest(a) != before

    def test_digest_arrays_key_sorted(self):
        bundle = {"b": np.ones(2), "a": np.zeros(3)}
        d = digest_arrays(bundle)
        assert list(d) == ["a", "b"]
        assert d["a"] == array_digest(bundle["a"])


class TestFingerprint:
    def _system(self, n=64, seed=9):
        rng = np.random.default_rng(seed)
        return (
            np.arange(n, dtype=np.int64),
            rng.random(n),
        )

    def test_partition_independent(self):
        ids, mass = self._system()
        whole = fingerprint_particles(ids, mass)
        # any split of the particles over "ranks" sums back (mod 2^64)
        # to the global fingerprint, in any order
        for cuts in ([16, 48], [1, 2, 3], [63]):
            parts = np.split(np.arange(len(ids)), cuts)
            total = 0
            for p in reversed(parts):
                total = (total + fingerprint_particles(ids[p], mass[p])) % (
                    1 << 64
                )
            assert total == whole

    def test_permutation_invariant(self):
        ids, mass = self._system()
        perm = np.random.default_rng(1).permutation(len(ids))
        assert fingerprint_particles(ids[perm], mass[perm]) == (
            fingerprint_particles(ids, mass)
        )

    def test_single_bit_flip_detected(self):
        ids, mass = self._system()
        ref = fingerprint_particles(ids, mass)
        for seed in range(8):
            damaged = mass.copy()
            flip_array_bits(damaged, nbits=1, seed=seed)
            assert fingerprint_particles(ids, damaged) != ref
        damaged_ids = ids.copy()
        flip_array_bits(damaged_ids, nbits=1, seed=0)
        assert fingerprint_particles(damaged_ids, mass) != ref

    def test_count_contributes(self):
        ids, mass = self._system()
        assert fingerprint_particles(ids, mass) != fingerprint_particles(
            ids[:-1], mass[:-1]
        )

    def test_empty(self):
        assert fingerprint_particles(
            np.zeros(0, dtype=np.int64), np.zeros(0)
        ) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fingerprint_particles(np.zeros(3, dtype=np.int64), np.zeros(2))
