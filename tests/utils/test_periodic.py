"""Tests for the periodic-geometry helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.periodic import minimum_image, periodic_distance, wrap_positions


class TestWrapPositions:
    def test_inside_unchanged(self):
        pos = np.array([[0.1, 0.5, 0.9]])
        np.testing.assert_array_equal(wrap_positions(pos), pos)

    def test_wraps_above_and_below(self):
        pos = np.array([[1.2, -0.3, 2.5]])
        np.testing.assert_allclose(wrap_positions(pos), [[0.2, 0.7, 0.5]])

    def test_never_returns_box_edge(self):
        # a value like -1e-18 must wrap to 0, not to box
        pos = np.array([[-1e-18, 1.0, -0.0]])
        out = wrap_positions(pos)
        assert np.all(out >= 0.0)
        assert np.all(out < 1.0)

    @given(
        hnp.arrays(
            np.float64,
            (10, 3),
            elements=st.floats(min_value=-100, max_value=100, width=32),
        )
    )
    def test_property_in_range(self, pos):
        out = wrap_positions(pos, box=1.0)
        assert np.all(out >= 0.0)
        assert np.all(out < 1.0)

    def test_custom_box(self):
        pos = np.array([[5.5, -1.0, 3.0]])
        np.testing.assert_allclose(wrap_positions(pos, box=2.0), [[1.5, 1.0, 1.0]])


class TestMinimumImage:
    def test_small_displacement_unchanged(self):
        dx = np.array([0.1, -0.2, 0.3])
        np.testing.assert_array_equal(minimum_image(dx), dx)

    def test_large_displacement_folded(self):
        dx = np.array([0.9, -0.8, 0.6])
        np.testing.assert_allclose(minimum_image(dx), [-0.1, 0.2, -0.4])

    @given(st.floats(min_value=-10, max_value=10))
    def test_property_half_box_bound(self, x):
        mi = float(minimum_image(np.array([x]))[0])
        assert abs(mi) <= 0.5 + 1e-12

    def test_half_box_tie_is_bankers_rounded(self):
        """Pin the exact box/2 tie: np.round rounds half to even, so
        +box/2 stays put (round(0.5)=0) while 3*box/2 wraps to -box/2
        (round(1.5)=2).  Every layer that inlined its own wrap now goes
        through this helper, so the tie resolves identically everywhere.
        """
        dx = np.array([0.5, -0.5, 1.5, -1.5, 2.5])
        out = minimum_image(dx)
        np.testing.assert_array_equal(out, [0.5, -0.5, -0.5, 0.5, 0.5])

    def test_out_aliasing_matches_pure_form(self):
        rng = np.random.default_rng(1)
        dx = rng.uniform(-3, 3, size=(50, 3))
        expect = minimum_image(dx.copy())
        buf = dx.copy()
        got = minimum_image(buf, out=buf)
        assert got is buf
        np.testing.assert_array_equal(got, expect)

    def test_out_separate_buffer(self):
        dx = np.array([[0.9, -0.8, 0.6]])
        out = np.empty_like(dx)
        got = minimum_image(dx, out=out)
        assert got is out
        np.testing.assert_allclose(out, [[-0.1, 0.2, -0.4]])


class TestPeriodicDistance:
    def test_through_wall(self):
        a = np.array([[0.05, 0.0, 0.0]])
        b = np.array([[0.95, 0.0, 0.0]])
        assert periodic_distance(a, b)[0] == pytest.approx(0.1)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a, b = rng.random((5, 3)), rng.random((5, 3))
        np.testing.assert_allclose(periodic_distance(a, b), periodic_distance(b, a))

    def test_max_distance_is_half_diagonal(self):
        a = np.array([[0.0, 0.0, 0.0]])
        b = np.array([[0.5, 0.5, 0.5]])
        assert periodic_distance(a, b)[0] == pytest.approx(np.sqrt(0.75))
