"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Per-test wall-clock alarm (pytest-timeout is not a dependency).  The
# fault-injection tests exercise code paths that, when buggy, hang in a
# collective; a SIGALRM turns such a hang into a loud failure instead
# of a wedged CI job.  Individual tests can override the budget with
# @pytest.mark.timeout(seconds).
_DEFAULT_TEST_TIMEOUT = 180.0

_ALARMS_SUPPORTED = hasattr(signal, "SIGALRM")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker and marker.args else _DEFAULT_TEST_TIMEOUT
    use_alarm = (
        _ALARMS_SUPPORTED
        and seconds > 0
        and threading.current_thread() is threading.main_thread()
    )
    if use_alarm:
        def _on_alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded {seconds:.0f}s wall-clock limit (possible "
                f"deadlock in a collective or recv)"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

# A single moderate profile: the suite contains hundreds of tests and
# several exercise O(N^2) references, so keep example counts modest.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20120416)


@pytest.fixture
def uniform_particles(rng):
    """64 uniformly random particles in the unit box with equal masses."""
    n = 64
    pos = rng.random((n, 3))
    mass = np.full(n, 1.0 / n)
    return pos, mass


@pytest.fixture
def clustered_particles(rng):
    """A clustered configuration: a tight Gaussian blob plus background."""
    n_blob, n_bg = 96, 32
    blob = 0.5 + 0.02 * rng.standard_normal((n_blob, 3))
    bg = rng.random((n_bg, 3))
    pos = np.mod(np.vstack([blob, bg]), 1.0)
    mass = np.full(len(pos), 1.0 / len(pos))
    return pos, mass
