"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A single moderate profile: the suite contains hundreds of tests and
# several exercise O(N^2) references, so keep example counts modest.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20120416)


@pytest.fixture
def uniform_particles(rng):
    """64 uniformly random particles in the unit box with equal masses."""
    n = 64
    pos = rng.random((n, 3))
    mass = np.full(n, 1.0 / n)
    return pos, mass


@pytest.fixture
def clustered_particles(rng):
    """A clustered configuration: a tight Gaussian blob plus background."""
    n_blob, n_bg = 96, 32
    blob = 0.5 + 0.02 * rng.standard_normal((n_blob, 3))
    bg = rng.random((n_bg, 3))
    pos = np.mod(np.vstack([blob, bg]), 1.0)
    mass = np.full(len(pos), 1.0 / len(pos))
    return pos, mass
