"""Tests of the analysis tools (projection, P(k), FoF, profiles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fof import friends_of_friends, halo_catalog
from repro.analysis.power import particle_power_spectrum
from repro.analysis.profiles import clumping_factor, radial_profile
from repro.analysis.projection import density_projection, zoom_projection


class TestDensityProjection:
    def test_mass_conserved(self, rng):
        pos = rng.random((200, 3))
        mass = rng.random(200)
        img = density_projection(pos, mass, n_pixels=32)
        pixel_area = (1.0 / 32) ** 2
        assert img.sum() * pixel_area == pytest.approx(mass.sum())

    def test_point_mass_lands_in_pixel(self):
        pos = np.array([[0.51, 0.26, 0.9]])
        img = density_projection(pos, np.array([2.0]), n_pixels=4, axis=2)
        assert img[2, 1] == pytest.approx(2.0 * 16)
        assert (img > 0).sum() == 1

    def test_axis_selection(self):
        pos = np.array([[0.1, 0.5, 0.9]])
        img_x = density_projection(pos, np.ones(1), n_pixels=4, axis=0)
        # projecting along x leaves (y, z) = (0.5, 0.9)
        assert img_x[2, 3] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            density_projection(np.zeros((1, 3)), np.ones(1), n_pixels=0)
        with pytest.raises(ValueError):
            density_projection(np.zeros((1, 3)), np.ones(1), axis=3)


class TestZoomProjection:
    def test_selects_window(self):
        pos = np.array([[0.5, 0.5, 0.1], [0.9, 0.9, 0.2]])
        img = zoom_projection(
            pos, np.ones(2), center=(0.5, 0.5), width=0.25, n_pixels=8
        )
        # only the centered particle is inside the window
        assert img.sum() * (0.25 / 8) ** 2 == pytest.approx(1.0)

    def test_periodic_window(self):
        """A window straddling the box corner still collects mass."""
        pos = np.array([[0.99, 0.99, 0.5]])
        img = zoom_projection(
            pos, np.ones(1), center=(0.0, 0.0), width=0.1, n_pixels=4
        )
        assert img.sum() > 0

    def test_paper_zoom_widths(self, rng):
        """Fig 6 zooms: 37.5 pc and 150 pc of the 600 pc box = 1/16 and
        1/4 of the box width."""
        pos = rng.random((500, 3))
        for frac in (1.0 / 16.0, 1.0 / 4.0):
            img = zoom_projection(
                pos, np.ones(500), center=(0.5, 0.5), width=frac, n_pixels=16
            )
            # expected mass fraction ~ frac^2
            frac_mass = img.sum() * (frac / 16) ** 2 / 500
            assert frac_mass == pytest.approx(frac**2, rel=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            zoom_projection(np.zeros((1, 3)), np.ones(1), (0.5, 0.5), width=0.0)


class TestParticlePowerSpectrum:
    def test_uniform_lattice_has_no_power(self):
        g = (np.arange(16) + 0.5) / 16
        pos = np.stack(np.meshgrid(g, g, g, indexing="ij"), -1).reshape(-1, 3)
        mass = np.ones(len(pos))
        k, pk, counts = particle_power_spectrum(
            pos, mass, n_mesh=16, subtract_shot_noise=False
        )
        # a perfect lattice has power only at its alias harmonics,
        # none of which fall below the lattice Nyquist
        assert np.all(pk[k < np.pi * 16 * 0.9] < 1e-20)

    def test_recovers_plane_wave_amplitude(self):
        """Particles displaced by a single mode show the linear power
        of that mode."""
        npd = 32
        g = (np.arange(npd) + 0.5) / npd
        q = np.stack(np.meshgrid(g, g, g, indexing="ij"), -1).reshape(-1, 3)
        amp = 1e-3
        delta_amp = 2 * np.pi * 2 * amp  # delta = -d(psi)/dx, k = 2*2pi
        pos = q.copy()
        pos[:, 0] += amp * np.cos(2 * np.pi * 2 * q[:, 0])
        pos = np.mod(pos, 1.0)
        k, pk, counts = particle_power_spectrum(
            pos, np.ones(len(q)), n_mesh=32, n_bins=20,
            subtract_shot_noise=False,
        )
        # P integrated over the bin: the mode pair carries
        # var = delta_amp^2/2 spread over `counts` modes of the bin
        imax = np.argmax(pk * counts)
        var = (pk * counts)[imax]
        assert k[imax] == pytest.approx(4 * np.pi, rel=0.2)
        assert var == pytest.approx(delta_amp**2 / 2, rel=0.05)

    def test_shot_noise_subtraction(self, rng):
        pos = rng.random((4096, 3))
        mass = np.ones(4096)
        k, p_raw, _ = particle_power_spectrum(
            pos, mass, n_mesh=16, subtract_shot_noise=False
        )
        k, p_sub, _ = particle_power_spectrum(
            pos, mass, n_mesh=16, subtract_shot_noise=True
        )
        np.testing.assert_allclose(p_raw - p_sub, 1.0 / 4096, rtol=1e-10)
        # random points: power consistent with shot noise
        assert np.abs(p_sub).max() < 0.5 * p_raw.max()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            particle_power_spectrum(np.zeros((0, 3)), np.zeros(0))


class TestFriendsOfFriends:
    def test_two_separated_clumps(self):
        rng = np.random.default_rng(1)
        a = 0.2 + 0.01 * rng.random((50, 3))
        b = 0.7 + 0.01 * rng.random((60, 3))
        pos = np.vstack([a, b])
        labels = friends_of_friends(pos, linking_length=0.05)
        assert len(np.unique(labels)) == 2
        assert len(np.unique(labels[:50])) == 1
        assert len(np.unique(labels[50:])) == 1

    def test_periodic_linking(self):
        pos = np.array([[0.99, 0.5, 0.5], [0.01, 0.5, 0.5]])
        labels = friends_of_friends(pos, linking_length=0.05)
        assert labels[0] == labels[1]

    def test_isolated_particles_distinct(self, rng):
        pos = rng.random((20, 3))
        labels = friends_of_friends(pos, linking_length=1e-6)
        assert len(np.unique(labels)) == 20

    def test_chain_connectivity(self):
        """FoF links transitively along a chain."""
        pos = np.array([[0.1 + 0.04 * i, 0.5, 0.5] for i in range(10)])
        labels = friends_of_friends(pos, linking_length=0.045)
        assert len(np.unique(labels)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            friends_of_friends(np.zeros((2, 3)), linking_length=0.0)
        with pytest.raises(ValueError):
            friends_of_friends(np.zeros((2, 3)), linking_length=0.6)


class TestHaloCatalog:
    def test_catalog_finds_clump(self):
        rng = np.random.default_rng(2)
        clump = 0.5 + 0.005 * rng.standard_normal((100, 3))
        bg = rng.random((50, 3))
        pos = np.mod(np.vstack([clump, bg]), 1.0)
        mass = np.ones(len(pos))
        halos = halo_catalog(pos, mass, linking_length=0.02, min_members=20)
        assert len(halos) >= 1
        assert halos[0].n_particles >= 90
        np.testing.assert_allclose(halos[0].center, 0.5, atol=0.02)

    def test_min_members_filter(self, rng):
        pos = rng.random((30, 3))
        halos = halo_catalog(pos, np.ones(30), linking_length=1e-5, min_members=2)
        assert halos == []

    def test_periodic_center_of_mass(self):
        """A clump straddling the box corner gets a center near the
        corner, not at the box middle."""
        rng = np.random.default_rng(3)
        pos = np.mod(0.002 * rng.standard_normal((80, 3)), 1.0)
        halos = halo_catalog(pos, np.ones(80), linking_length=0.05, min_members=10)
        c = halos[0].center
        assert np.all((c < 0.02) | (c > 0.98))

    def test_sorted_by_mass(self, rng):
        big = 0.25 + 0.005 * rng.random((120, 3))
        small = 0.75 + 0.005 * rng.random((40, 3))
        pos = np.vstack([big, small])
        halos = halo_catalog(pos, np.ones(len(pos)), 0.02, min_members=10)
        assert len(halos) == 2
        assert halos[0].mass > halos[1].mass


class TestProfiles:
    def test_uniform_density_flat_profile(self, rng):
        pos = rng.random((20000, 3))
        mass = np.ones(20000) / 20000
        r, rho, counts = radial_profile(
            pos, mass, center=np.array([0.5, 0.5, 0.5]), r_min=0.1, r_max=0.45,
            n_bins=5,
        )
        np.testing.assert_allclose(rho, 1.0, rtol=0.15)

    def test_power_law_cusp(self, rng):
        """A rho ~ r^-2 cloud measures slope ~ -2."""
        n = 30000
        r = 0.2 * rng.random(n) ** 1.0  # p(r) ~ const -> rho ~ r^-2
        u = rng.standard_normal((n, 3))
        u /= np.linalg.norm(u, axis=1, keepdims=True)
        pos = 0.5 + r[:, None] * u
        rm, rho, counts = radial_profile(
            pos, np.ones(n), np.array([0.5, 0.5, 0.5]), 0.01, 0.2, n_bins=8
        )
        slope = np.polyfit(np.log(rm), np.log(rho), 1)[0]
        assert slope == pytest.approx(-2.0, abs=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            radial_profile(
                np.zeros((1, 3)), np.ones(1), np.zeros(3), 0.2, 0.1
            )

    def test_clumping_factor_uniform_vs_clustered(self, rng):
        uniform = rng.random((5000, 3))
        clustered = np.mod(
            0.5 + 0.02 * rng.standard_normal((5000, 3)), 1.0
        )
        m = np.ones(5000)
        c_u = clumping_factor(uniform, m, n_mesh=16)
        c_c = clumping_factor(clustered, m, n_mesh=16)
        assert c_u == pytest.approx(1.0, rel=0.25)
        assert c_c > 10 * c_u

    def test_clumping_empty_rejected(self):
        with pytest.raises(ValueError):
            clumping_factor(np.zeros((0, 3)), np.zeros(0))
