"""Tests of the NFW profile model and fitter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.profiles import fit_nfw, nfw_density, radial_profile


class TestNfwDensity:
    def test_characteristic_value(self):
        # rho(r_s) = rho_s / 4
        assert nfw_density(0.1, rho_s=8.0, r_s=0.1) == pytest.approx(2.0)

    def test_asymptotic_slopes(self):
        r = np.array([1e-4, 1e-3])
        inner = np.log(nfw_density(r[1], 1, 0.1) / nfw_density(r[0], 1, 0.1)) / np.log(
            r[1] / r[0]
        )
        assert inner == pytest.approx(-1.0, abs=0.02)
        r = np.array([10.0, 100.0])
        outer = np.log(nfw_density(r[1], 1, 0.1) / nfw_density(r[0], 1, 0.1)) / np.log(
            r[1] / r[0]
        )
        assert outer == pytest.approx(-3.0, abs=0.05)


class TestFitNfw:
    def test_recovers_exact_profile(self):
        r = np.geomspace(0.001, 0.3, 20)
        rho = nfw_density(r, rho_s=123.0, r_s=0.02)
        rho_s, r_s, rms = fit_nfw(r, rho)
        assert rho_s == pytest.approx(123.0, rel=1e-5)
        assert r_s == pytest.approx(0.02, rel=1e-5)
        assert rms < 1e-8

    def test_recovers_with_noise(self):
        rng = np.random.default_rng(0)
        r = np.geomspace(0.001, 0.3, 25)
        rho = nfw_density(r, rho_s=50.0, r_s=0.05) * np.exp(
            0.05 * rng.standard_normal(len(r))
        )
        rho_s, r_s, rms = fit_nfw(r, rho)
        assert r_s == pytest.approx(0.05, rel=0.15)
        assert rms < 0.1

    def test_ignores_empty_bins(self):
        r = np.geomspace(0.001, 0.3, 10)
        rho = nfw_density(r, 10.0, 0.03)
        rho[0] = 0.0  # empty innermost bin
        rho_s, r_s, _ = fit_nfw(r, rho)
        assert r_s == pytest.approx(0.03, rel=1e-4)

    def test_too_few_bins_rejected(self):
        with pytest.raises(ValueError):
            fit_nfw(np.array([0.1, 0.2]), np.array([1.0, 0.5]))

    def test_fit_from_sampled_halo(self, rng):
        """Sample particles from an NFW cumulative mass profile and
        recover the scale radius from the measured density profile."""
        r_s, n = 0.02, 40000
        # inverse-CDF sampling of m(r) ~ ln(1+x) - x/(1+x), x = r/r_s
        x_grid = np.geomspace(1e-3, 10, 2000)
        m = np.log(1 + x_grid) - x_grid / (1 + x_grid)
        m /= m[-1]
        u = rng.random(n)
        x = np.interp(u, m, x_grid)
        dirs = rng.standard_normal((n, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        pos = 0.5 + (x * r_s)[:, None] * dirs
        pos = pos[np.all(np.abs(pos - 0.5) < 0.45, axis=1)]
        r_mid, rho, counts = radial_profile(
            pos,
            np.ones(len(pos)),
            np.array([0.5, 0.5, 0.5]),
            r_min=2e-3,
            r_max=0.15,
            n_bins=14,
        )
        rho_s, r_s_fit, rms = fit_nfw(r_mid, rho, weights=counts)
        assert r_s_fit == pytest.approx(r_s, rel=0.2)
        assert rms < 0.2


class TestCosmologicalDistances:
    def test_eds_comoving_distance(self):
        from repro.cosmology.expansion import Expansion
        from repro.cosmology.params import EINSTEIN_DE_SITTER

        exp = Expansion(EINSTEIN_DE_SITTER)
        # EdS: D_C = 2 (1 - 1/sqrt(1+z)) in c/H0 units
        for z in (0.5, 1.0, 3.0):
            assert exp.comoving_distance(z) == pytest.approx(
                2.0 * (1.0 - 1.0 / np.sqrt(1.0 + z)), rel=1e-8
            )

    def test_eds_lookback(self):
        from repro.cosmology.expansion import Expansion
        from repro.cosmology.params import EINSTEIN_DE_SITTER

        exp = Expansion(EINSTEIN_DE_SITTER)
        # EdS: t_L = (2/3)[1 - (1+z)^{-3/2}]
        assert exp.lookback_time(1.0) == pytest.approx(
            (2.0 / 3.0) * (1.0 - 2.0**-1.5), rel=1e-8
        )

    def test_validation(self):
        from repro.cosmology.expansion import Expansion
        from repro.cosmology.params import WMAP7

        exp = Expansion(WMAP7)
        with pytest.raises(ValueError):
            exp.comoving_distance(-1.0)
        with pytest.raises(ValueError):
            exp.lookback_time(-0.5)
