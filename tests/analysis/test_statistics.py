"""Tests of the halo mass function and two-point correlation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fof import Halo, halo_catalog
from repro.analysis.statistics import halo_mass_function, two_point_correlation


def _halo(mass):
    return Halo(members=np.arange(3), mass=mass, center=np.zeros(3))


class TestHaloMassFunction:
    def test_cumulative_counts(self):
        halos = [_halo(m) for m in (1.0, 2.0, 4.0, 8.0)]
        t, n = halo_mass_function(halos, n_bins=4)
        assert n[0] == pytest.approx(4.0)  # all halos above the minimum
        assert n[-1] == pytest.approx(1.0)  # only the largest at the top
        assert np.all(np.diff(n) <= 0)  # cumulative: non-increasing

    def test_volume_normalization(self):
        halos = [_halo(1.0), _halo(2.0)]
        _, n1 = halo_mass_function(halos, box=1.0)
        _, n2 = halo_mass_function(halos, box=2.0)
        np.testing.assert_allclose(n1, 8.0 * n2)

    def test_single_mass_degenerate(self):
        t, n = halo_mass_function([_halo(5.0), _halo(5.0)])
        assert len(t) == 1
        assert n[0] == pytest.approx(2.0)

    def test_empty_catalog(self):
        with pytest.raises(ValueError):
            halo_mass_function([])

    def test_from_real_catalog(self, rng):
        blob = np.mod(0.3 + 0.01 * rng.standard_normal((200, 3)), 1.0)
        bg = rng.random((100, 3))
        pos = np.vstack([blob, bg])
        halos = halo_catalog(pos, np.ones(len(pos)), 0.03, min_members=10)
        t, n = halo_mass_function(halos)
        assert n[0] >= 1


class TestTwoPointCorrelation:
    def test_random_points_uncorrelated(self, rng):
        pos = rng.random((3000, 3))
        edges = np.array([0.05, 0.1, 0.2, 0.4])
        r, xi = two_point_correlation(pos, edges)
        np.testing.assert_allclose(xi, 0.0, atol=0.05)

    def test_clustered_positive_at_small_r(self, rng):
        blob = np.mod(0.5 + 0.02 * rng.standard_normal((500, 3)), 1.0)
        bg = rng.random((500, 3))
        pos = np.vstack([blob, bg])
        edges = np.array([0.005, 0.02, 0.05, 0.2, 0.45])
        r, xi = two_point_correlation(pos, edges)
        assert xi[0] > 10.0  # strong small-scale clustering
        assert abs(xi[-1]) < 1.0  # decorrelates at large r

    def test_pair_count_normalization(self, rng):
        """Integrating (1 + xi) over all r recovers the total pairs."""
        pos = rng.random((400, 3))
        edges = np.linspace(1e-6, 0.49, 30)
        r, xi = two_point_correlation(pos, edges)
        shell_vol = 4.0 / 3.0 * np.pi * np.diff(edges**3)
        n = len(pos)
        rr = n * (n - 1) / 2 * shell_vol
        total_pairs = np.sum((1 + xi) * rr)
        # pairs within r < 0.49 (most pairs; the box corner misses some)
        assert total_pairs < n * (n - 1) / 2
        assert total_pairs > 0.4 * n * (n - 1) / 2

    def test_validation(self, rng):
        pos = rng.random((10, 3))
        with pytest.raises(ValueError):
            two_point_correlation(pos, np.array([0.2, 0.1]))
        with pytest.raises(ValueError):
            two_point_correlation(pos, np.array([0.1, 0.6]))
        with pytest.raises(ValueError):
            two_point_correlation(pos[:1], np.array([0.1, 0.2]))
