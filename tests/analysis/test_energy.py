"""Tests of the Layzer-Irvine tracker, including the end-to-end
cosmological-integration validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.energy import LayzerIrvineTracker
from repro.config import PMConfig, SimulationConfig, TreeConfig, TreePMConfig
from repro.cosmology.params import EINSTEIN_DE_SITTER
from repro.ic.zeldovich import ZeldovichIC
from repro.integrate.stepper import CosmoStepper
from repro.sim.serial import SerialSimulation


class TestTrackerMechanics:
    def test_requires_increasing_a(self):
        t = LayzerIrvineTracker()
        t.record(0.1, 1.0, -1.0)
        with pytest.raises(ValueError):
            t.record(0.1, 1.0, -1.0)

    def test_requires_two_samples(self):
        t = LayzerIrvineTracker()
        t.record(0.1, 1.0, -1.0)
        with pytest.raises(ValueError):
            t.residual()

    def test_comoving_to_peculiar_conversion(self):
        t = LayzerIrvineTracker()
        t.record(0.5, 1.0, -2.0)
        assert t.potential[0] == pytest.approx(-4.0)

    def test_analytic_solution_satisfies_equation(self):
        """Synthetic history K ~ a^-1, W ~ a^-1 with K = -W/2 (virial
        equilibrium in EdS scaling) is a stationary solution:
        d/da[a(K+W)] = -K requires d/da[a*(-K)] ... check numerically
        on the exact relation instead: choose K(a), derive W(a) from
        the ODE and verify the tracker's residual vanishes."""
        a_grid = np.linspace(0.1, 0.5, 400)
        K = a_grid ** (-1.0)  # arbitrary smooth choice
        # solve d/da [a (K+W)] = -K  =>  a(K+W) = C - int K da
        C = a_grid[0] * (K[0] + (-2.0 * K[0]))  # pick W0 = -2 K0
        integral = np.concatenate(
            [[0.0], np.cumsum(0.5 * (K[1:] + K[:-1]) * np.diff(a_grid))]
        )
        W = (C - integral) / a_grid - K
        t = LayzerIrvineTracker()
        for a, k, w in zip(a_grid, K, W):
            t.record(a, k, w * a)  # tracker expects comoving W_c = W*a
        assert t.relative_violation() < 1e-5


class TestCosmologicalRun:
    def test_layzer_irvine_holds_in_simulation(self):
        """End-to-end: an EdS TreePM run satisfies the cosmic energy
        equation to a few percent — the global consistency check of
        forces, expansion factors and the KDK operators."""
        pk = lambda k, z=0.0: 5e-7 * np.ones_like(np.asarray(k))
        ic = ZeldovichIC(
            EINSTEIN_DE_SITTER, pk, n_per_dim=8, mesh_n=16, seed=5
        )
        a0, a1 = 0.02, 0.08
        pos, mom, mass = ic.generate(a_start=a0)
        cfg = SimulationConfig(
            treepm=TreePMConfig(
                tree=TreeConfig(opening_angle=0.4, group_size=32),
                pm=PMConfig(mesh_size=16),
                softening=3e-3,
            ),
            pp_subcycles=2,
        )
        sim = SerialSimulation(
            cfg, pos, mom, mass, stepper=CosmoStepper(EINSTEIN_DE_SITTER)
        )
        tracker = LayzerIrvineTracker()

        def sample(a):
            k = sim.kinetic_energy(a)
            wc = float(
                0.5 * np.sum(sim.mass * sim.solver.potential(sim.pos, sim.mass))
            )
            tracker.record(a, k, wc)

        sample(a0)
        edges = np.geomspace(a0, a1, 13)
        for e1, e2 in zip(edges[:-1], edges[1:]):
            sim.step(float(e1), float(e2))
            sample(float(e2))

        assert tracker.n_samples == 13
        assert tracker.relative_violation() < 0.05
