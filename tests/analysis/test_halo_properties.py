"""Tests of per-halo structural measurements."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fof import Halo, halo_catalog
from repro.analysis.halo_properties import halo_properties


def _plummer_sphere(n, a, rng, center=0.5):
    """Equilibrium Plummer sphere (positions + isotropic velocities).

    Plummer model with total mass 1, scale radius a, G = 1: known
    virial equilibrium with sigma^2(total) = ... sampled via the
    standard Aarseth rejection method.
    """
    # radii from the cumulative mass profile
    u = rng.random(n)
    r = a / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    dirs = rng.standard_normal((n, 3))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    pos = center + r[:, None] * dirs
    # velocities: rejection sampling of q = v/v_esc with g(q) ~
    # q^2 (1 - q^2)^(7/2)
    q = np.empty(n)
    filled = 0
    while filled < n:
        qq = rng.random(n)
        gg = rng.random(n) * 0.1
        ok = gg < qq**2 * (1 - qq**2) ** 3.5
        take = min(ok.sum(), n - filled)
        q[filled : filled + take] = qq[ok][:take]
        filled += take
    # v_esc = sqrt(2 G M / a) (1 + (r/a)^2)^(-1/4) with G = M = 1
    v_esc = np.sqrt(2.0 / a) * (1.0 + r**2 / a**2) ** -0.25
    vdirs = rng.standard_normal((n, 3))
    vdirs /= np.linalg.norm(vdirs, axis=1, keepdims=True)
    vel = (q * v_esc)[:, None] * vdirs
    return pos, vel


class TestHaloProperties:
    @pytest.fixture(scope="class")
    def plummer(self):
        rng = np.random.default_rng(7)
        n = 3000
        pos, vel = _plummer_sphere(n, a=0.01, rng=rng)
        mass = np.full(n, 1.0 / n)
        keep = np.all(np.abs(pos - 0.5) < 0.45, axis=1)
        return pos[keep], vel[keep], mass[keep]

    def test_virial_equilibrium(self, plummer):
        """A Plummer sphere is in virial equilibrium: 2K/|W| ~ 1."""
        pos, vel, mass = plummer
        halos = halo_catalog(pos, mass, linking_length=0.01, min_members=100)
        props = halo_properties(halos[0], pos, vel, mass)
        assert props.virial_ratio == pytest.approx(1.0, abs=0.15)

    def test_half_mass_radius(self, plummer):
        """Plummer: r_half = a / sqrt(2^(2/3) - 1) ~ 1.305 a."""
        pos, vel, mass = plummer
        halos = halo_catalog(pos, mass, linking_length=0.01, min_members=100)
        props = halo_properties(halos[0], pos, vel, mass)
        assert props.half_mass_radius == pytest.approx(1.305 * 0.01, rel=0.15)

    def test_cold_clump_sub_virial(self, rng):
        """Zero velocities: virial ratio 0 (about to collapse)."""
        pos = np.mod(0.5 + 0.005 * rng.standard_normal((200, 3)), 1.0)
        vel = np.zeros_like(pos)
        mass = np.ones(200)
        halos = halo_catalog(pos, mass, linking_length=0.01, min_members=50)
        props = halo_properties(halos[0], pos, vel, mass)
        assert props.virial_ratio == pytest.approx(0.0, abs=1e-12)
        assert props.velocity_dispersion == 0.0

    def test_bulk_velocity_removed(self, rng):
        pos = np.mod(0.5 + 0.005 * rng.standard_normal((100, 3)), 1.0)
        vel = np.full((100, 3), 7.0)  # pure bulk motion
        mass = np.ones(100)
        halos = halo_catalog(pos, mass, linking_length=0.01, min_members=50)
        props = halo_properties(halos[0], pos, vel, mass)
        np.testing.assert_allclose(props.bulk_velocity, 7.0, rtol=1e-12)
        assert props.velocity_dispersion == pytest.approx(0.0, abs=1e-10)

    def test_central_density_positive(self, plummer):
        pos, vel, mass = plummer
        halos = halo_catalog(pos, mass, linking_length=0.01, min_members=100)
        props = halo_properties(halos[0], pos, vel, mass)
        # mean density within the half-mass sphere ~ M/2 / V(r_half)
        rough = 0.5 * props.mass / (4 / 3 * np.pi * props.half_mass_radius**3)
        assert props.central_density > rough  # cuspier toward the center

    def test_small_halo_rejected(self):
        h = Halo(members=np.array([0]), mass=1.0, center=np.zeros(3))
        with pytest.raises(ValueError):
            halo_properties(h, np.zeros((1, 3)), np.zeros((1, 3)), np.ones(1))

    def test_nfw_fit_optional(self, rng):
        """Tiny halos skip the profile fit gracefully."""
        pos = np.mod(0.5 + 0.003 * rng.standard_normal((30, 3)), 1.0)
        mass = np.ones(30)
        halos = halo_catalog(pos, mass, linking_length=0.01, min_members=10)
        props = halo_properties(
            halos[0], pos, np.zeros_like(pos), mass, fit_profile=True
        )
        assert props.nfw_r_s is None
        assert props.concentration is None
