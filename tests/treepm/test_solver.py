"""Integration tests: TreePM total force against the Ewald reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PMConfig, TreeConfig, TreePMConfig
from repro.forces.ewald import EwaldSummation
from repro.treepm.solver import TreePMSolver


def _config(mesh=16, rcut_cells=4.0, theta=0.3, eps=1e-4, split="s2"):
    return TreePMConfig(
        tree=TreeConfig(opening_angle=theta, leaf_size=8, group_size=32),
        pm=PMConfig(mesh_size=mesh),
        rcut_mesh_units=rcut_cells,
        softening=eps,
        split=split,
    )


@pytest.fixture(scope="module")
def ewald():
    return EwaldSummation()


class TestTreePMAgainstEwald:
    def test_random_particles(self, ewald):
        rng = np.random.default_rng(42)
        pos = rng.random((64, 3))
        mass = np.full(64, 1.0 / 64)
        eps = 1e-4
        solver = TreePMSolver(_config(eps=eps))
        result = solver.forces(pos, mass)
        ref = ewald.forces(pos, mass, eps=eps)
        err = np.linalg.norm(result.total - ref, axis=1)
        scale = np.linalg.norm(ref, axis=1).mean()
        assert np.sqrt((err**2).mean()) / scale < 0.03

    def test_clustered_particles(self, ewald, clustered_particles):
        pos, mass = clustered_particles
        eps = 1e-4
        solver = TreePMSolver(_config(eps=eps))
        result = solver.forces(pos, mass)
        ref = ewald.forces(pos, mass, eps=eps)
        err = np.linalg.norm(result.total - ref, axis=1)
        scale = np.linalg.norm(ref, axis=1).mean()
        assert np.sqrt((err**2).mean()) / scale < 0.03

    def test_gaussian_split_also_accurate(self, ewald):
        rng = np.random.default_rng(43)
        pos = rng.random((48, 3))
        mass = np.full(48, 1.0 / 48)
        eps = 1e-4
        solver = TreePMSolver(_config(eps=eps, split="gaussian"))
        result = solver.forces(pos, mass)
        ref = ewald.forces(pos, mass, eps=eps)
        err = np.linalg.norm(result.total - ref, axis=1)
        scale = np.linalg.norm(ref, axis=1).mean()
        assert np.sqrt((err**2).mean()) / scale < 0.05

    def test_fast_rsqrt_negligible_error(self):
        rng = np.random.default_rng(44)
        pos = rng.random((48, 3))
        mass = np.full(48, 1.0 / 48)
        exact = TreePMSolver(_config()).forces(pos, mass).total
        fast = TreePMSolver(_config(), use_fast_rsqrt=True).forces(pos, mass).total
        err = np.linalg.norm(fast - exact, axis=1)
        assert err.max() < 1e-5 * np.linalg.norm(exact, axis=1).max()


class TestTreePMStructure:
    def test_components_sum(self, uniform_particles):
        pos, mass = uniform_particles
        result = TreePMSolver(_config()).forces(pos, mass)
        np.testing.assert_allclose(
            result.total, result.short_range + result.long_range, atol=0
        )

    def test_timing_ledger_has_paper_phases(self, uniform_particles):
        pos, mass = uniform_particles
        result = TreePMSolver(_config()).forces(pos, mass)
        t = result.timing.as_dict()
        for phase in (
            "PM/density assignment",
            "PM/FFT",
            "PM/acceleration on mesh",
            "PM/force interpolation",
            "PP/tree construction",
            "PP/force calculation",
        ):
            assert phase in t

    def test_stats_populated(self, uniform_particles):
        pos, mass = uniform_particles
        result = TreePMSolver(_config()).forces(pos, mass)
        assert result.stats.interactions > 0
        assert result.stats.mean_group_size > 0

    def test_short_range_locality(self):
        """Short-range force on an isolated pair beyond rcut is zero."""
        solver = TreePMSolver(_config(mesh=16, rcut_cells=3.0))
        pos = np.array([[0.2, 0.5, 0.5], [0.8, 0.5, 0.5]])
        mass = np.ones(2)
        result = solver.forces(pos, mass)
        np.testing.assert_allclose(result.short_range, 0.0, atol=1e-12)
        # but the total force is not zero: the PM part carries it
        assert np.abs(result.total[0, 0]) > 0.1

    def test_momentum_conservation(self, clustered_particles):
        pos, mass = clustered_particles
        result = TreePMSolver(_config()).forces(pos, mass)
        ptot = np.linalg.norm((mass[:, None] * result.total).sum(axis=0))
        scale = np.abs(mass[:, None] * result.total).sum()
        assert ptot < 0.01 * scale


class TestTreePMPotential:
    def test_potential_energy_negative(self, clustered_particles):
        pos, mass = clustered_particles
        solver = TreePMSolver(_config())
        phi = solver.potential(pos, mass)
        # a bound clustered system has negative total potential energy
        assert (mass * phi).sum() < 0

    def test_potential_consistent_with_force(self):
        """Numerical gradient of the TreePM potential ~ the force."""
        solver = TreePMSolver(_config(mesh=16))
        rng = np.random.default_rng(7)
        pos = rng.random((32, 3))
        mass = np.full(32, 1.0 / 32)
        probe = np.array([0.52, 0.48, 0.5])
        h = 1e-4

        def phi_at(p):
            all_pos = np.vstack([pos, p])
            all_mass = np.concatenate([mass, [0.0]])
            return solver.potential(all_pos, all_mass)[-1]

        grad = np.zeros(3)
        for d in range(3):
            pp, pm = probe.copy(), probe.copy()
            pp[d] += h
            pm[d] -= h
            grad[d] = (phi_at(pp) - phi_at(pm)) / (2 * h)

        all_pos = np.vstack([pos, probe])
        all_mass = np.concatenate([mass, [0.0]])
        acc = TreePMSolver(_config(mesh=16)).forces(all_pos, all_mass).total[-1]
        np.testing.assert_allclose(acc, -grad, rtol=0.15, atol=0.05)
