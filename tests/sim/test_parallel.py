"""Tests of the distributed simulation driver.

The headline property: the parallel driver reproduces the serial
TreePM integration — domain decomposition, ghost exchange and relay
mesh are all physics-neutral.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    DomainConfig,
    PMConfig,
    RelayMeshConfig,
    SimulationConfig,
    TreeConfig,
    TreePMConfig,
)
from repro.sim.parallel import run_parallel_simulation
from repro.sim.serial import SerialSimulation


def _config(divisions=(2, 1, 1), n_groups=1, mesh=16):
    return SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.4, group_size=32),
            pm=PMConfig(mesh_size=mesh),
            rcut_mesh_units=3.0,
            softening=5e-3,
        ),
        domain=DomainConfig(divisions=divisions, sample_rate=0.3),
        relay=RelayMeshConfig(n_groups=n_groups),
        pp_subcycles=2,
    )


@pytest.fixture(scope="module")
def particles():
    rng = np.random.default_rng(77)
    pos = rng.random((128, 3))
    mom = 0.02 * rng.standard_normal((128, 3))
    mass = np.full(128, 1.0 / 128)
    return pos, mom, mass


@pytest.fixture(scope="module")
def serial_result(particles):
    pos, mom, mass = particles
    sim = SerialSimulation(_config((1, 1, 1)), pos, mom, mass)
    sim.run(0.0, 0.08, n_steps=2)
    return sim.pos, sim.mom


class TestParallelMatchesSerial:
    @pytest.mark.parametrize(
        "divisions,n_groups",
        [((1, 1, 1), 1), ((2, 1, 1), 1), ((2, 2, 1), 1), ((4, 1, 1), 2)],
    )
    def test_final_state_agrees(self, particles, serial_result, divisions, n_groups):
        pos, mom, mass = particles
        cfg = _config(divisions, n_groups)
        p_pos, p_mom, p_mass, sims, _ = run_parallel_simulation(
            cfg, pos, mom, mass, 0.0, 0.08, n_steps=2
        )
        s_pos, s_mom = serial_result
        # identical physics; differences are roundoff amplified by two
        # steps of nonlinear dynamics
        d = np.abs(p_pos - s_pos)
        d = np.minimum(d, 1.0 - d)  # periodic metric
        assert d.max() < 1e-6
        np.testing.assert_allclose(p_mom, s_mom, atol=1e-5)
        np.testing.assert_allclose(np.sort(p_mass), np.sort(mass), atol=0)

    def test_mass_and_count_conserved(self, particles):
        pos, mom, mass = particles
        p_pos, p_mom, p_mass, sims, _ = run_parallel_simulation(
            _config((2, 2, 1)), pos, mom, mass, 0.0, 0.04, n_steps=1
        )
        assert len(p_pos) == len(pos)
        assert p_mass.sum() == pytest.approx(mass.sum())


class TestTable1Accounting:
    def test_all_rows_present(self, particles):
        pos, mom, mass = particles
        _, _, _, sims, _ = run_parallel_simulation(
            _config((2, 1, 1)), pos, mom, mass, 0.0, 0.04, n_steps=1
        )
        rows = sims[0].table1_rows()
        for key in (
            "PM/density assignment",
            "PM/communication",
            "PM/FFT",
            "PM/acceleration on mesh",
            "PM/force interpolation",
            "PP/local tree",
            "PP/communication",
            "PP/tree construction",
            "PP/tree traversal",
            "PP/force calculation",
            "Domain Decomposition/position update",
            "Domain Decomposition/sampling method",
            "Domain Decomposition/particle exchange",
        ):
            assert key in rows, key
            assert rows[key] >= 0.0

    def test_interaction_statistics_collected(self, particles):
        pos, mom, mass = particles
        _, _, _, sims, _ = run_parallel_simulation(
            _config((2, 1, 1)), pos, mom, mass, 0.0, 0.04, n_steps=1
        )
        total = sum(s.stats.interactions for s in sims)
        assert total > 0
        assert sims[0].stats.mean_group_size > 0
        assert sims[0].stats.mean_list_length > 0

    def test_traffic_phases_logged(self, particles):
        pos, mom, mass = particles
        _, _, _, _, runtime = run_parallel_simulation(
            _config((2, 2, 1)), pos, mom, mass, 0.0, 0.04, n_steps=1
        )
        assert runtime.traffic.merged(["pp:ghosts"]).total_bytes > 0
        assert runtime.traffic.merged(["pm:mesh_to_slab"]).n_messages > 0


class TestValidation:
    def test_division_rank_mismatch(self, particles):
        from repro.mpi.runtime import run_spmd
        from repro.sim.parallel import ParallelSimulation

        pos, mom, mass = particles

        def fn(comm):
            ParallelSimulation(comm, _config((4, 1, 1)), pos, mom, mass)

        with pytest.raises(RuntimeError, match="divisions"):
            run_spmd(2, fn)
