"""Tests of adaptive stepping and the pencil backend in the drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    DomainConfig,
    PMConfig,
    SimulationConfig,
    TreeConfig,
    TreePMConfig,
)
from repro.cosmology.expansion import Expansion
from repro.cosmology.params import EINSTEIN_DE_SITTER
from repro.integrate.stepper import CosmoStepper
from repro.integrate.timestep import StepController
from repro.sim.parallel import run_parallel_simulation
from repro.sim.serial import SerialSimulation


def _cfg(**kw):
    pm = kw.pop("pm", PMConfig(mesh_size=16))
    return SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.5, group_size=32),
            pm=pm,
            softening=5e-3,
        ),
        **kw,
    )


class TestAdaptiveRun:
    def test_reaches_end_time(self, rng):
        pos = rng.random((64, 3))
        mass = np.full(64, 1.0 / 64)
        sim = SerialSimulation(
            _cfg(), pos, np.zeros_like(pos), mass,
            stepper=CosmoStepper(EINSTEIN_DE_SITTER),
        )
        ctrl = StepController(
            Expansion(EINSTEIN_DE_SITTER), eps=5e-3, max_dloga=0.2
        )
        times = []
        steps = sim.run_adaptive(
            0.02, 0.05, ctrl, on_step=lambda s, t: times.append(t)
        )
        assert steps == len(times)
        assert times[-1] == pytest.approx(0.05)
        assert all(b > a for a, b in zip(times[:-1], times[1:]))

    def test_max_steps_guard(self, rng):
        pos = rng.random((16, 3))
        mass = np.full(16, 1.0 / 16)
        sim = SerialSimulation(
            _cfg(), pos, np.zeros_like(pos), mass,
            stepper=CosmoStepper(EINSTEIN_DE_SITTER),
        )
        ctrl = StepController(
            Expansion(EINSTEIN_DE_SITTER), eps=5e-3, max_dloga=1e-4
        )
        with pytest.raises(RuntimeError, match="max_steps"):
            sim.run_adaptive(0.02, 0.5, ctrl, max_steps=5)


class TestPencilBackendInDriver:
    def test_matches_slab_backend(self):
        rng = np.random.default_rng(21)
        pos = rng.random((96, 3))
        mom = 0.01 * rng.standard_normal((96, 3))
        mass = np.full(96, 1.0 / 96)

        out = {}
        for backend in ("slab", "pencil"):
            cfg = _cfg(
                pm=PMConfig(mesh_size=16, fft_backend=backend),
                domain=DomainConfig(divisions=(2, 2, 1), sample_rate=0.3),
            )
            p, m, w, sims, _ = run_parallel_simulation(
                cfg, pos, mom, mass, 0.0, 0.04, n_steps=1
            )
            out[backend] = (p, m)

        np.testing.assert_allclose(
            out["pencil"][0], out["slab"][0], atol=1e-9
        )
        np.testing.assert_allclose(
            out["pencil"][1], out["slab"][1], atol=1e-8
        )

    def test_backend_validation(self):
        with pytest.raises(ValueError, match="fft_backend"):
            PMConfig(fft_backend="cube")
