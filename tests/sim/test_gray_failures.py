"""End-to-end gray-failure tolerance: straggler eviction, graceful
degradation, and disk-pressure-safe checkpointing.

The acceptance scenario from the health layer's design: inject
``slow_rank(factor=10)`` into an elastic run and require (a) with
``policy="evict"`` a cooperative drain — detect, drain, shrink with
*zero replayed steps*, no hard-timeout kill of a beating rank, and a
conserved post-eviction trajectory; (b) with ``policy="degrade"`` the
same run completes *degraded* instead of deadlocking or shrinking.
Disk-full injection must leave ``LATEST`` on the last complete set and
keep the run alive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    DomainConfig,
    HealthConfig,
    PMConfig,
    SimulationConfig,
    TreePMConfig,
)
from repro.mpi.faults import FaultPlan
from repro.sim import checkpoint as _ckpt
from repro.sim.checkpoint import CheckpointSpaceError
from repro.sim.elastic import run_elastic_simulation
from repro.sim.parallel import run_parallel_simulation

pytestmark = [pytest.mark.faults, pytest.mark.timeout(300)]

N = 96
N_STEPS = 6
T_END = 0.06


def _cfg(n_ranks=3, policy="off", **health_kw):
    health_kw.setdefault("straggler_factor", 3.0)
    health_kw.setdefault("straggler_patience", 2)
    health_kw.setdefault("min_samples", 2)
    return SimulationConfig(
        domain=DomainConfig(
            divisions=(n_ranks, 1, 1), sample_rate=0.3, cost_balance=False
        ),
        treepm=TreePMConfig(pm=PMConfig(mesh_size=16)),
        health=HealthConfig(policy=policy, **health_kw),
    )


def _system(seed=5):
    rng = np.random.default_rng(seed)
    return (
        rng.random((N, 3)),
        rng.normal(scale=0.01, size=(N, 3)),
        np.full(N, 1.0 / N),
    )


def _assert_conserved(pos0, mom0, mass0, p, m, w):
    assert len(p) == len(pos0)
    assert w.sum() == pytest.approx(mass0.sum(), rel=1e-13)
    p_before = (mass0[:, None] * mom0).sum(axis=0)
    p_after = (w[:, None] * m).sum(axis=0)
    np.testing.assert_allclose(p_after, p_before, atol=1e-6)


def _slow_plan(rank=2, factor=10.0):
    return FaultPlan().slow_rank(rank, factor=factor, base=0.05)


class TestStragglerEviction:
    def test_confirmed_straggler_is_proactively_evicted(self):
        """The tentpole acceptance run: detect -> drain -> shrink with
        zero replayed steps, trajectory conserved afterwards."""
        pos, mom, mass = _system()
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(policy="evict"), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=_slow_plan(), recv_timeout=10.0, buddy_every=1,
        )
        assert runtime.dead_ranks == [2]
        live = [r for r in runners if r is not None]
        assert [r.comm.size for r in live] == [2, 2]
        assert all(r.sim.steps_taken == N_STEPS for r in live)
        (event,) = live[0].events
        assert event.mode == "buddy"
        assert event.trigger == "eviction"
        # the drain flushed the replica at the eviction boundary: the
        # shrink resumes exactly where the fleet stopped
        assert event.resumed_step == event.failed_step
        _assert_conserved(pos, mom, mass, p, m, w)

    @pytest.mark.parametrize("start_step", [0, 2], ids=["early", "late"])
    def test_eviction_at_any_phase(self, start_step):
        """The straggler may turn slow at any point in the schedule;
        the drain must still land before the hard deadline."""
        pos, mom, mass = _system()
        plan = FaultPlan().slow_rank(
            2, factor=10.0, base=0.05, start_step=start_step
        )
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(policy="evict"), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=plan, recv_timeout=10.0, buddy_every=1,
        )
        assert runtime.dead_ranks == [2]
        live = [r for r in runners if r is not None]
        assert all(r.sim.steps_taken == N_STEPS for r in live)
        (event,) = live[0].events
        assert event.trigger == "eviction"
        assert event.failed_step > start_step
        _assert_conserved(pos, mom, mass, p, m, w)

    def test_eviction_event_log_records_detect_drain_shrink(self):
        pos, mom, mass = _system()
        _, _, _, runners, _ = run_elastic_simulation(
            _cfg(policy="evict"), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=_slow_plan(), recv_timeout=10.0, buddy_every=1,
        )
        live = [r for r in runners if r is not None]
        kinds = [ev["kind"] for ev in live[0].health_events()]
        for required in (
            "straggler_suspect", "straggler_confirmed", "drain",
            "evict_shrink",
        ):
            assert required in kinds, f"missing {required!r} in {kinds}"
        assert kinds.index("straggler_suspect") < kinds.index(
            "straggler_confirmed"
        ) < kinds.index("drain") < kinds.index("evict_shrink")
        shrink = next(
            ev for ev in live[0].health_events()
            if ev["kind"] == "evict_shrink"
        )
        assert shrink["rank"] == 2
        assert "zero steps replayed" in shrink["detail"]

    def test_survivor_logs_identical_verdicts(self):
        pos, mom, mass = _system()
        _, _, _, runners, _ = run_elastic_simulation(
            _cfg(policy="evict"), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=_slow_plan(), recv_timeout=10.0, buddy_every=1,
        )
        live = [r for r in runners if r is not None]
        verdicts = [
            [
                (ev["kind"], ev["rank"]) for ev in r.health_events()
                if ev["kind"].startswith("straggler")
            ]
            for r in live
        ]
        assert verdicts[0] == verdicts[1]  # collective by construction


class TestGracefulDegradation:
    def test_eviction_disabled_completes_degraded(self):
        """Same injected straggler, ``policy="degrade"``: nobody dies,
        nobody deadlocks, the fleet sheds load instead."""
        pos, mom, mass = _system()
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(policy="degrade"), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=_slow_plan(), recv_timeout=10.0, buddy_every=1,
        )
        assert runtime.dead_ranks == []
        live = [r for r in runners if r is not None]
        assert len(live) == 3  # full fleet survived
        assert all(r.sim.steps_taken == N_STEPS for r in live)
        assert all(r.events == [] for r in live)  # no shrink happened
        assert live[0].degrade.level >= 1
        assert live[0].degrade.audit_stretch >= 2
        kinds = [ev["kind"] for ev in live[0].health_events()]
        assert "straggler_confirmed" in kinds
        assert "degrade_enter" in kinds and "audit_stretch" in kinds
        _assert_conserved(pos, mom, mass, p, m, w)

    @pytest.mark.parametrize("start_step", [0, 2], ids=["early", "late"])
    def test_degrade_at_any_phase(self, start_step):
        pos, mom, mass = _system()
        plan = FaultPlan().slow_rank(
            2, factor=10.0, base=0.05, start_step=start_step
        )
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(policy="degrade"), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=plan, recv_timeout=10.0, buddy_every=1,
        )
        assert runtime.dead_ranks == []
        live = [r for r in runners if r is not None]
        assert len(live) == 3
        assert all(r.sim.steps_taken == N_STEPS for r in live)
        assert live[0].degrade.level >= 1
        _assert_conserved(pos, mom, mass, p, m, w)

    def test_monitor_policy_observes_without_acting(self):
        pos, mom, mass = _system()
        _, _, _, runners, runtime = run_elastic_simulation(
            _cfg(policy="monitor"), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=_slow_plan(), recv_timeout=10.0, buddy_every=1,
        )
        assert runtime.dead_ranks == []
        live = [r for r in runners if r is not None]
        assert len(live) == 3
        assert live[0].degrade.level == 0
        kinds = [ev["kind"] for ev in live[0].health_events()]
        assert "straggler_confirmed" in kinds
        assert "degrade_enter" not in kinds and "drain" not in kinds

    def test_health_off_run_matches_plain_run_bitwise(self):
        """``policy="off"`` must be a true no-op on the trajectory."""
        pos, mom, mass = _system()
        p_ref, m_ref, w_ref, _, _ = run_parallel_simulation(
            _cfg(), pos, mom, mass, 0.0, T_END, N_STEPS
        )
        p, m, w, runners, _ = run_elastic_simulation(
            _cfg(policy="evict"), pos, mom, mass, 0.0, T_END, N_STEPS,
            recv_timeout=10.0,
        )
        np.testing.assert_array_equal(p, p_ref)
        np.testing.assert_array_equal(m, m_ref)
        np.testing.assert_array_equal(w, w_ref)
        live = [r for r in runners if r is not None]
        assert all(
            ev["kind"] == "deadline_widen"
            for r in live for ev in r.health_events()
        )  # healthy fleet: at most deadline adjustments, no verdicts


class TestDiskPressure:
    def test_injected_disk_full_leaves_latest_on_last_complete_set(
        self, tmp_path
    ):
        """Satellite regression: ENOSPC mid-epoch must not flip LATEST,
        must remove the partial step directory, and must not kill the
        run — the writer degrades (stretched cadence) and retries at
        the next boundary."""
        pos, mom, mass = _system()
        plan = FaultPlan().disk_full(path="step_00003", after_bytes=64)
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(policy="degrade"), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=plan, recv_timeout=10.0, buddy_every=1,
            checkpoint_dir=tmp_path, checkpoint_every=1,
        )
        assert runtime.dead_ranks == []
        live = [r for r in runners if r is not None]
        assert all(r.sim.steps_taken == N_STEPS for r in live)
        kinds = [ev["kind"] for ev in live[0].health_events()]
        assert "checkpoint_skipped" in kinds
        assert "degrade_enter" in kinds  # disk pressure escalates
        # the poisoned epoch is gone; LATEST names a complete one
        assert not (tmp_path / "step_00003").exists()
        latest = _ckpt.latest_checkpoint(tmp_path)
        assert latest is not None and latest.name != "step_00003"
        _ckpt.validate_checkpoint(latest)
        _assert_conserved(pos, mom, mass, p, m, w)

    def test_preflight_rejects_epoch_that_cannot_fit(
        self, tmp_path, monkeypatch
    ):
        """A statvfs that reports less free space than the previous
        epoch needed fails the checkpoint *before* any bytes hit disk."""
        import os

        pos, mom, mass = _system()
        # first run writes a complete epoch to size the preflight
        run_elastic_simulation(
            _cfg(policy="degrade"), pos, mom, mass, 0.0, T_END, N_STEPS,
            recv_timeout=10.0, checkpoint_dir=tmp_path,
            checkpoint_every=N_STEPS,
        )
        latest_before = _ckpt.latest_checkpoint(tmp_path)
        assert latest_before is not None
        need = _ckpt.checkpoint_size(latest_before)
        assert need > 0

        real_statvfs = os.statvfs

        class Starved:
            def __init__(self, st):
                self.f_bavail = 0
                self.f_frsize = st.f_frsize

        monkeypatch.setattr(
            os, "statvfs", lambda p: Starved(real_statvfs(p))
        )
        with pytest.raises(CheckpointSpaceError, match="free"):
            _ckpt.check_free_space(tmp_path, need)
        monkeypatch.undo()
        # and the full-run wiring: a starved preflight skips the epoch
        # but the run itself survives
        monkeypatch.setattr(
            os, "statvfs", lambda p: Starved(real_statvfs(p))
        )
        _, _, _, runners, runtime = run_elastic_simulation(
            _cfg(policy="degrade"), pos, mom, mass, 0.0, T_END, N_STEPS,
            recv_timeout=10.0, checkpoint_dir=tmp_path,
            checkpoint_every=N_STEPS,
        )
        assert runtime.dead_ranks == []
        live = [r for r in runners if r is not None]
        assert all(r.sim.steps_taken == N_STEPS for r in live)
        kinds = [ev["kind"] for ev in live[0].health_events()]
        assert "checkpoint_skipped" in kinds
        assert _ckpt.latest_checkpoint(tmp_path) == latest_before
