"""Tests of snapshot I/O and checkpoint/resume equivalence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import PMConfig, SimulationConfig, TreeConfig, TreePMConfig
from repro.sim.io import (
    SnapshotHeader,
    array_digest,
    atomic_write,
    load_snapshot,
    save_snapshot,
)
from repro.sim.serial import SerialSimulation


def _state(rng, n=32):
    return rng.random((n, 3)), rng.standard_normal((n, 3)), np.full(n, 1.0 / n)


class TestSnapshotRoundtrip:
    def test_arrays_and_header_preserved(self, tmp_path, rng):
        pos, mom, mass = _state(rng)
        hdr = SnapshotHeader(
            time=0.25,
            n_particles=32,
            cosmological=True,
            step=7,
            extra={"seed": 42, "label": "test"},
        )
        path = tmp_path / "snap.npz"
        save_snapshot(path, pos, mom, mass, hdr)
        p2, m2, w2, h2 = load_snapshot(path)
        np.testing.assert_array_equal(p2, pos)
        np.testing.assert_array_equal(m2, mom)
        np.testing.assert_array_equal(w2, mass)
        assert h2 == hdr
        assert h2.redshift == pytest.approx(3.0)

    def test_length_mismatch_rejected(self, tmp_path, rng):
        pos, mom, mass = _state(rng)
        hdr = SnapshotHeader(time=0.0, n_particles=99)
        with pytest.raises(ValueError):
            save_snapshot(tmp_path / "x.npz", pos, mom, mass, hdr)

    def test_redshift_requires_cosmological(self):
        hdr = SnapshotHeader(time=1.0, n_particles=1, cosmological=False)
        with pytest.raises(ValueError):
            hdr.redshift

    def test_suffix_tolerance(self, tmp_path, rng):
        """numpy appends .npz: loading by the bare name still works."""
        pos, mom, mass = _state(rng)
        hdr = SnapshotHeader(time=0.0, n_particles=32)
        save_snapshot(tmp_path / "snap", pos, mom, mass, hdr)
        assert (tmp_path / "snap.npz").exists()
        p2, _, _, _ = load_snapshot(tmp_path / "snap")
        np.testing.assert_array_equal(p2, pos)

    def test_missing_snapshot_names_both_candidates(self, tmp_path):
        with pytest.raises(FileNotFoundError) as ei:
            load_snapshot(tmp_path / "nope")
        msg = str(ei.value)
        assert str(tmp_path / "nope") in msg
        assert str(tmp_path / "nope.npz") in msg

    def test_missing_snapshot_with_suffix(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="nope.npz"):
            load_snapshot(tmp_path / "nope.npz")


class TestSnapshotIntegrity:
    def test_corrupted_array_detected(self, tmp_path, rng):
        """Tampering with an array after the write must not load."""
        pos, mom, mass = _state(rng)
        path = tmp_path / "snap.npz"
        save_snapshot(
            path, pos, mom, mass, SnapshotHeader(time=0.0, n_particles=32)
        )
        with np.load(path) as data:
            contents = {name: data[name] for name in data.files}
        tampered = contents["mom"].copy()
        tampered[0, 0] += 1e-9
        contents["mom"] = tampered
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **contents)
        with pytest.raises(ValueError, match="checksum mismatch for array 'mom'"):
            load_snapshot(path)

    def test_atomic_write_replaces_and_cleans_up(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"old contents")
        atomic_write(path, lambda fh: fh.write(b"new contents"))
        assert path.read_bytes() == b"new contents"
        assert list(tmp_path.iterdir()) == [path]  # no stray temp files

    def test_atomic_write_failure_preserves_original(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"old contents")

        def exploding_writer(fh):
            fh.write(b"half-written")
            raise OSError("disk on fire")

        with pytest.raises(OSError, match="disk on fire"):
            atomic_write(path, exploding_writer)
        assert path.read_bytes() == b"old contents"
        assert list(tmp_path.iterdir()) == [path]

    def test_array_digest_sensitive_to_shape_and_dtype(self):
        a = np.arange(6, dtype=np.float64)
        assert array_digest(a) != array_digest(a.reshape(2, 3))
        assert array_digest(a) != array_digest(a.astype(np.float32))
        assert array_digest(a) == array_digest(a.copy())


class TestSerialCheckpointApi:
    def _cfg(self):
        return SimulationConfig(
            treepm=TreePMConfig(
                tree=TreeConfig(opening_angle=0.5, group_size=32),
                pm=PMConfig(mesh_size=16),
                softening=5e-3,
            ),
        )

    def test_save_and_from_checkpoint_roundtrip(self, tmp_path, rng):
        cfg = self._cfg()
        pos, mom, mass = _state(rng, 64)
        sim = SerialSimulation(cfg, pos, mom, mass)
        sim.run(0.0, 0.1, n_steps=2)
        path = tmp_path / "ck.npz"
        sim.save_checkpoint(path, 0.1)
        sim2, hdr = SerialSimulation.from_checkpoint(cfg, path)
        assert sim2.steps_taken == 2
        assert hdr.time == pytest.approx(0.1)
        np.testing.assert_array_equal(sim2.pos, sim.pos)
        np.testing.assert_array_equal(sim2.mom, sim.mom)

    def test_from_checkpoint_rejects_config_mismatch(self, tmp_path, rng):
        cfg = self._cfg()
        pos, mom, mass = _state(rng, 32)
        sim = SerialSimulation(cfg, pos, mom, mass)
        sim.save_checkpoint(tmp_path / "ck.npz", 0.0)
        other = SimulationConfig(
            treepm=TreePMConfig(
                tree=TreeConfig(opening_angle=0.5, group_size=32),
                pm=PMConfig(mesh_size=16),
                softening=1e-2,
            ),
        )
        with pytest.raises(ValueError, match="different"):
            SerialSimulation.from_checkpoint(other, tmp_path / "ck.npz")

    def test_run_writes_rolling_checkpoint(self, tmp_path, rng):
        cfg = self._cfg()
        pos, mom, mass = _state(rng, 64)
        path = tmp_path / "rolling.npz"

        straight = SerialSimulation(cfg, pos, mom, mass)
        straight.run(0.0, 0.2, n_steps=4)

        sim = SerialSimulation(cfg, pos, mom, mass)
        sim.run(0.0, 0.2, n_steps=4, checkpoint_every=2, checkpoint_path=path)
        _, hdr = SerialSimulation.from_checkpoint(cfg, path)
        assert hdr.step == 4  # last write is after the final step

        # resume from a mid-run (step-2) checkpoint: bit-for-bit
        edges = np.linspace(0.0, 0.2, 5)
        mid = SerialSimulation(cfg, pos, mom, mass)
        for i in range(2):
            mid.step(float(edges[i]), float(edges[i + 1]))
        mid.save_checkpoint(path, float(edges[2]))
        resumed, hdr = SerialSimulation.from_checkpoint(cfg, path)
        resumed.run(0.0, 0.2, n_steps=4, first_step=hdr.step)
        np.testing.assert_array_equal(resumed.pos, straight.pos)
        np.testing.assert_array_equal(resumed.mom, straight.mom)


class TestCheckpointResume:
    def test_resume_reproduces_trajectory(self, tmp_path, rng):
        """Run 4 steps straight vs 2 steps + checkpoint + 2 steps."""
        cfg = SimulationConfig(
            treepm=TreePMConfig(
                tree=TreeConfig(opening_angle=0.5, group_size=32),
                pm=PMConfig(mesh_size=16),
                softening=5e-3,
            ),
        )
        pos, mom, mass = _state(rng, 64)

        straight = SerialSimulation(cfg, pos, mom, mass)
        straight.run(0.0, 0.2, n_steps=4)

        first = SerialSimulation(cfg, pos, mom, mass)
        first.run(0.0, 0.1, n_steps=2)
        save_snapshot(
            tmp_path / "ckpt.npz",
            first.pos,
            first.mom,
            first.mass,
            SnapshotHeader(time=0.1, n_particles=64, step=2),
        )

        p2, m2, w2, hdr = load_snapshot(tmp_path / "ckpt.npz")
        resumed = SerialSimulation(cfg, p2, m2, w2)
        resumed.run(hdr.time, 0.2, n_steps=2)

        np.testing.assert_allclose(resumed.pos, straight.pos, atol=1e-12)
        np.testing.assert_allclose(resumed.mom, straight.mom, atol=1e-12)
