"""Tests of snapshot I/O and checkpoint/resume equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PMConfig, SimulationConfig, TreeConfig, TreePMConfig
from repro.sim.io import SnapshotHeader, load_snapshot, save_snapshot
from repro.sim.serial import SerialSimulation


def _state(rng, n=32):
    return rng.random((n, 3)), rng.standard_normal((n, 3)), np.full(n, 1.0 / n)


class TestSnapshotRoundtrip:
    def test_arrays_and_header_preserved(self, tmp_path, rng):
        pos, mom, mass = _state(rng)
        hdr = SnapshotHeader(
            time=0.25,
            n_particles=32,
            cosmological=True,
            step=7,
            extra={"seed": 42, "label": "test"},
        )
        path = tmp_path / "snap.npz"
        save_snapshot(path, pos, mom, mass, hdr)
        p2, m2, w2, h2 = load_snapshot(path)
        np.testing.assert_array_equal(p2, pos)
        np.testing.assert_array_equal(m2, mom)
        np.testing.assert_array_equal(w2, mass)
        assert h2 == hdr
        assert h2.redshift == pytest.approx(3.0)

    def test_length_mismatch_rejected(self, tmp_path, rng):
        pos, mom, mass = _state(rng)
        hdr = SnapshotHeader(time=0.0, n_particles=99)
        with pytest.raises(ValueError):
            save_snapshot(tmp_path / "x.npz", pos, mom, mass, hdr)

    def test_redshift_requires_cosmological(self):
        hdr = SnapshotHeader(time=1.0, n_particles=1, cosmological=False)
        with pytest.raises(ValueError):
            hdr.redshift

    def test_suffix_tolerance(self, tmp_path, rng):
        """numpy appends .npz: loading by the bare name still works."""
        pos, mom, mass = _state(rng)
        hdr = SnapshotHeader(time=0.0, n_particles=32)
        save_snapshot(tmp_path / "snap", pos, mom, mass, hdr)
        p2, _, _, _ = load_snapshot(tmp_path / "snap")
        np.testing.assert_array_equal(p2, pos)


class TestCheckpointResume:
    def test_resume_reproduces_trajectory(self, tmp_path, rng):
        """Run 4 steps straight vs 2 steps + checkpoint + 2 steps."""
        cfg = SimulationConfig(
            treepm=TreePMConfig(
                tree=TreeConfig(opening_angle=0.5, group_size=32),
                pm=PMConfig(mesh_size=16),
                softening=5e-3,
            ),
        )
        pos, mom, mass = _state(rng, 64)

        straight = SerialSimulation(cfg, pos, mom, mass)
        straight.run(0.0, 0.2, n_steps=4)

        first = SerialSimulation(cfg, pos, mom, mass)
        first.run(0.0, 0.1, n_steps=2)
        save_snapshot(
            tmp_path / "ckpt.npz",
            first.pos,
            first.mom,
            first.mass,
            SnapshotHeader(time=0.1, n_particles=64, step=2),
        )

        p2, m2, w2, hdr = load_snapshot(tmp_path / "ckpt.npz")
        resumed = SerialSimulation(cfg, p2, m2, w2)
        resumed.run(hdr.time, 0.2, n_steps=2)

        np.testing.assert_allclose(resumed.pos, straight.pos, atol=1e-12)
        np.testing.assert_allclose(resumed.mom, straight.mom, atol=1e-12)
