"""Checkpoint retention and at-rest integrity: ``prune_checkpoints``
(keep the newest N epochs, never the one ``LATEST`` names),
``scrub_checkpoints`` (full digest re-verification of every retained
epoch), ``newest_valid_checkpoint`` (restore-time bit-rot skip) and the
``config.sdc.keep_last`` wiring through the distributed checkpoint
writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    DomainConfig,
    PMConfig,
    SdcConfig,
    SimulationConfig,
    TreePMConfig,
)
from repro.mpi.faults import flip_file_bits
from repro.sim import checkpoint as _ckpt
from repro.sim.checkpoint import CheckpointError

pytestmark = pytest.mark.timeout(120)


def _make_epoch(root, step, n_ranks=1, point_latest=True):
    """Write a minimal but fully valid checkpoint epoch."""
    step_dir = root / _ckpt.step_dirname(step)
    step_dir.mkdir(parents=True)
    files = []
    for r in range(n_ranks):
        name = _ckpt.rank_filename(r, n_ranks)
        digest = _ckpt.write_rank_file(
            step_dir / name,
            {"pos": np.full((4, 3), float(step)), "ids": np.arange(4)},
            {"rank": r, "size": n_ranks},
        )
        files.append(
            {"rank": r, "name": name, "sha256": digest, "n_particles": 4}
        )
    _ckpt.write_manifest(
        step_dir,
        {
            "version": _ckpt.CHECKPOINT_VERSION,
            "n_ranks": n_ranks,
            "steps_taken": step,
            "schedule": {"next_step": step},
            "config_hash": "test",
            "files": files,
        },
    )
    if point_latest:
        _ckpt.update_latest(root, step_dir.name)
    return step_dir


class TestPrune:
    def test_keeps_newest_n(self, tmp_path):
        for s in range(5):
            _make_epoch(tmp_path, s)
        deleted = _ckpt.prune_checkpoints(tmp_path, keep_last=2)
        assert [p.name for p in deleted] == [
            "step_00000", "step_00001", "step_00002"
        ]
        assert [p.name for p in _ckpt.list_checkpoints(tmp_path)] == [
            "step_00003", "step_00004"
        ]
        # survivors still validate
        for step_dir in _ckpt.list_checkpoints(tmp_path):
            _ckpt.validate_checkpoint(step_dir)

    def test_never_deletes_latest_pointer_target(self, tmp_path):
        for s in range(4):
            _make_epoch(tmp_path, s)
        # the pointer still names epoch 1: a newer pointer flip that
        # never committed must not cost the restart point
        _ckpt.update_latest(tmp_path, _ckpt.step_dirname(1))
        _ckpt.prune_checkpoints(tmp_path, keep_last=1)
        names = [p.name for p in _ckpt.list_checkpoints(tmp_path)]
        assert "step_00001" in names and "step_00003" in names

    def test_noop_when_under_budget(self, tmp_path):
        _make_epoch(tmp_path, 0)
        assert _ckpt.prune_checkpoints(tmp_path, keep_last=3) == []

    def test_rejects_nonpositive(self, tmp_path):
        with pytest.raises(ValueError):
            _ckpt.prune_checkpoints(tmp_path, keep_last=0)


class TestScrubAndNewestValid:
    def test_scrub_all_clean(self, tmp_path):
        for s in range(3):
            _make_epoch(tmp_path, s)
        reports = _ckpt.scrub_checkpoints(tmp_path)
        assert len(reports) == 3
        assert all(r["ok"] for r in reports)

    def test_scrub_names_the_rotted_epoch(self, tmp_path):
        for s in range(3):
            _make_epoch(tmp_path, s)
        victim = tmp_path / "step_00001" / _ckpt.rank_filename(0, 1)
        flip_file_bits(victim, nbits=1, seed=9)
        reports = _ckpt.scrub_checkpoints(tmp_path)
        bad = [r for r in reports if not r["ok"]]
        assert len(bad) == 1
        assert "step_00001" in str(bad[0]["step_dir"])
        assert "digest mismatch" in bad[0]["error"]

    def test_newest_valid_skips_rotted_newest(self, tmp_path):
        for s in range(3):
            _make_epoch(tmp_path, s)
        flip_file_bits(
            tmp_path / "step_00002" / _ckpt.rank_filename(0, 1),
            nbits=1, seed=2,
        )
        good = _ckpt.newest_valid_checkpoint(tmp_path)
        assert good.name == "step_00001"

    def test_newest_valid_raises_when_all_rotted(self, tmp_path):
        _make_epoch(tmp_path, 0)
        flip_file_bits(
            tmp_path / "step_00000" / _ckpt.rank_filename(0, 1),
            nbits=1, seed=2,
        )
        with pytest.raises(CheckpointError, match="step_00000"):
            _ckpt.newest_valid_checkpoint(tmp_path)

    def test_scrub_empty_dir(self, tmp_path):
        assert _ckpt.scrub_checkpoints(tmp_path) == []


class TestKeepLastWiring:
    def test_parallel_checkpoint_applies_retention(self, tmp_path):
        from repro.sim.parallel import run_parallel_simulation

        rng = np.random.default_rng(7)
        n = 64
        config = SimulationConfig(
            domain=DomainConfig(
                divisions=(2, 1, 1), sample_rate=0.3, cost_balance=False
            ),
            treepm=TreePMConfig(pm=PMConfig(mesh_size=16)),
            sdc=SdcConfig(keep_last=2),
        )
        run_parallel_simulation(
            config,
            rng.random((n, 3)),
            rng.normal(scale=0.01, size=(n, 3)),
            np.full(n, 1.0 / n),
            0.0, 0.04, 4,
            checkpoint_every=1,
            checkpoint_dir=tmp_path,
            backend="thread",
        )
        names = [p.name for p in _ckpt.list_checkpoints(tmp_path)]
        assert len(names) == 2
        assert names[-1] == _ckpt.step_dirname(4)
        for step_dir in _ckpt.list_checkpoints(tmp_path):
            _ckpt.validate_checkpoint(step_dir)
