"""End-to-end elastic shrink-and-continue recovery.

Kill ranks mid-run and require the surviving job to finish the full
schedule with particle count, total mass and total momentum conserved
— via the in-memory buddy path, the disk-checkpoint fallback, and the
clean failure when neither exists.  Includes the randomized
kill-anywhere property test and the LATEST-pointer crash-window
regression."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import DomainConfig, PMConfig, SimulationConfig, TreePMConfig
from repro.mpi.faults import FaultPlan
from repro.mpi.recovery import RecoveryError
from repro.sim import checkpoint as _ckpt
from repro.sim.elastic import config_for_ranks, run_elastic_simulation
from repro.sim.io import atomic_write
from repro.sim.parallel import run_parallel_simulation

pytestmark = [pytest.mark.faults, pytest.mark.timeout(300)]

N = 96
N_STEPS = 4
T_END = 0.04


def _cfg(n_ranks=3):
    return SimulationConfig(
        domain=DomainConfig(
            divisions=(n_ranks, 1, 1), sample_rate=0.3, cost_balance=False
        ),
        treepm=TreePMConfig(pm=PMConfig(mesh_size=16)),
    )


def _system(seed=5):
    rng = np.random.default_rng(seed)
    return (
        rng.random((N, 3)),
        rng.normal(scale=0.01, size=(N, 3)),
        np.full(N, 1.0 / N),
    )


def _assert_conserved(pos0, mom0, mass0, p, m, w):
    assert len(p) == len(pos0)
    assert w.sum() == pytest.approx(mass0.sum(), rel=1e-13)
    p_before = (mass0[:, None] * mom0).sum(axis=0)
    p_after = (w[:, None] * m).sum(axis=0)
    # total momentum moves only by the (approximate) antisymmetry of
    # the tree PP forces over the run — loose but meaningful bound
    np.testing.assert_allclose(p_after, p_before, atol=1e-6)


class TestElasticRecovery:
    def test_fault_free_elastic_matches_plain_run(self):
        pos, mom, mass = _system()
        p_ref, m_ref, w_ref, _, _ = run_parallel_simulation(
            _cfg(), pos, mom, mass, 0.0, T_END, N_STEPS
        )
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(), pos, mom, mass, 0.0, T_END, N_STEPS, recv_timeout=5.0
        )
        assert runtime.dead_ranks == []
        assert all(r.events == [] for r in runners)
        np.testing.assert_array_equal(p, p_ref)
        np.testing.assert_array_equal(m, m_ref)
        np.testing.assert_array_equal(w, w_ref)

    def test_buddy_recovery_completes_schedule(self):
        pos, mom, mass = _system()
        plan = FaultPlan().kill_rank(1, 2)
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=plan, recv_timeout=3.0, buddy_every=1,
        )
        assert runtime.dead_ranks == [1]
        live = [r for r in runners if r is not None]
        assert [r.comm.size for r in live] == [2, 2]
        assert all(r.sim.steps_taken == N_STEPS for r in live)
        (event,) = live[0].events
        assert event.mode == "buddy"
        assert event.dead_ranks == (1,)
        assert event.n_survivors == 2
        assert event.duration > 0
        _assert_conserved(pos, mom, mass, p, m, w)

    def test_buddy_cadence_replays_lost_steps(self):
        pos, mom, mass = _system()
        plan = FaultPlan().kill_rank(2, 3)
        p, m, w, runners, _ = run_elastic_simulation(
            _cfg(), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=plan, recv_timeout=3.0, buddy_every=2,
        )
        live = [r for r in runners if r is not None]
        (event,) = live[0].events
        # boundary refreshes land on steps 0 and 2 with K=2: a kill at
        # step 3 rolls back to 2.  Where the failure *surfaces* is
        # per-rank: a survivor still in step 2's tail communication can
        # observe the death before its counter reaches 3.
        assert event.resumed_step == 2
        assert event.failed_step in (2, 3)
        assert all(r.sim.steps_taken == N_STEPS for r in live)
        _assert_conserved(pos, mom, mass, p, m, w)

    def test_disk_fallback_when_owner_and_buddy_die(self, tmp_path):
        pos, mom, mass = _system()
        plan = FaultPlan().kill_rank(1, 2).kill_rank(2, 2)
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(4), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=plan, recv_timeout=3.0, buddy_every=1,
            checkpoint_dir=tmp_path, checkpoint_every=1,
        )
        assert sorted(runtime.dead_ranks) == [1, 2]
        live = [r for r in runners if r is not None]
        assert [r.comm.size for r in live] == [2, 2]
        (event,) = live[0].events
        assert event.mode == "disk"
        assert all(r.sim.steps_taken == N_STEPS for r in live)
        _assert_conserved(pos, mom, mass, p, m, w)

    def test_no_checkpoint_and_no_buddy_fails_cleanly(self):
        pos, mom, mass = _system()
        plan = FaultPlan().kill_rank(1, 2).kill_rank(2, 2)
        with pytest.raises(RuntimeError) as exc_info:
            run_elastic_simulation(
                _cfg(4), pos, mom, mass, 0.0, T_END, N_STEPS,
                fault_plan=plan, recv_timeout=2.0, buddy_every=1,
            )
        errors = getattr(exc_info.value, "rank_errors", {})
        assert any(isinstance(e, RecoveryError) for e in errors.values())

    def test_elastic_requires_finite_recv_timeout(self):
        pos, mom, mass = _system()
        with pytest.raises(ValueError, match="recv_timeout"):
            run_elastic_simulation(
                _cfg(), pos, mom, mass, 0.0, T_END, N_STEPS, recv_timeout=None
            )

    def test_two_sequential_deaths(self):
        pos, mom, mass = _system()
        plan = FaultPlan().kill_rank(0, 1).kill_rank(2, 3)
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(4), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=plan, recv_timeout=3.0, buddy_every=1,
        )
        assert sorted(runtime.dead_ranks) == [0, 2]
        live = [r for r in runners if r is not None]
        assert [r.comm.size for r in live] == [2, 2]
        assert [len(r.events) for r in live] == [2, 2]
        assert [e.mode for e in live[0].events] == ["buddy", "buddy"]
        assert live[0].events[0].epoch == 1
        assert live[0].events[1].epoch == 2
        _assert_conserved(pos, mom, mass, p, m, w)


class TestKillAnywhereProperty:
    """Satellite: random (rank, step) kills conserve the invariants."""

    @given(
        rank=st.integers(min_value=0, max_value=2),
        step=st.integers(min_value=0, max_value=N_STEPS - 1),
    )
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_conservation_under_random_kill(self, rank, step):
        pos, mom, mass = _system(seed=9)
        plan = FaultPlan().kill_rank(rank, step)
        p, m, w, runners, runtime = run_elastic_simulation(
            _cfg(), pos, mom, mass, 0.0, T_END, N_STEPS,
            fault_plan=plan, recv_timeout=3.0, buddy_every=1,
        )
        assert runtime.dead_ranks == [rank]
        live = [r for r in runners if r is not None]
        assert len(live) == 2
        assert all(r.sim.steps_taken == N_STEPS for r in live)
        assert live[0].events[0].mode == "buddy"
        _assert_conserved(pos, mom, mass, p, m, w)


class TestConfigForRanks:
    def test_retargets_divisions_and_keeps_hash(self):
        cfg = _cfg(4)
        shrunk = config_for_ranks(cfg, 3)
        assert shrunk.domain.n_domains == 3
        assert shrunk.config_hash(include_layout=False) == cfg.config_hash(
            include_layout=False
        )

    def test_clamps_relay_groups(self):
        from repro.config import RelayMeshConfig

        cfg = _cfg(4).with_(relay=RelayMeshConfig(n_groups=4))
        shrunk = config_for_ranks(cfg, 2)
        assert shrunk.relay.n_groups == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            config_for_ranks(_cfg(), 0)


class TestLatestPointerDurability:
    """Satellite: the LATEST flip is fsynced and crash-atomic."""

    def test_update_latest_fsyncs_directories(self, tmp_path, monkeypatch):
        (tmp_path / "step_00001").mkdir()
        synced = []
        real_fsync = os.fsync

        def spy_fsync(fd):
            synced.append(os.fstat(fd).st_ino)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        _ckpt.update_latest(tmp_path, "step_00001")
        inodes = {
            os.stat(p).st_ino
            for p in (tmp_path, tmp_path / "step_00001")
        }
        # both the step dir and the checkpoint dir (rename parent) were
        # fsynced, plus the pointer temp file itself
        assert inodes <= set(synced)
        assert len(synced) >= 3
        assert (tmp_path / _ckpt.LATEST_NAME).read_text().strip() == "step_00001"

    def test_crash_during_flip_preserves_previous_pointer(
        self, tmp_path, monkeypatch
    ):
        for name in ("step_00001", "step_00002"):
            (tmp_path / name).mkdir()
        _ckpt.update_latest(tmp_path, "step_00001")

        real_replace = os.replace

        def crashing_replace(src, dst):
            if str(dst).endswith(_ckpt.LATEST_NAME):
                raise OSError("simulated crash inside the pointer flip")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", crashing_replace)
        with pytest.raises(OSError, match="simulated crash"):
            _ckpt.update_latest(tmp_path, "step_00002")
        monkeypatch.undo()

        # the previous pointer survives intact, no temp litter remains
        assert (tmp_path / _ckpt.LATEST_NAME).read_text().strip() == "step_00001"
        assert _ckpt.latest_checkpoint(tmp_path) == tmp_path / "step_00001"
        assert not [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]

    def test_atomic_write_fsync_parent_flag(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        atomic_write(tmp_path / "a", lambda fh: fh.write(b"x"))
        without_parent = len(synced)
        atomic_write(tmp_path / "b", lambda fh: fh.write(b"x"), fsync_parent=True)
        assert len(synced) == without_parent + 2  # temp file + parent dir
