"""End-to-end runtime validation: guardrails catch injected corruption.

The PR-1 fault machinery and the invariant guardrails close a loop
here: a :class:`FaultPlan` silently corrupting exchanged momenta is
*invisible* to an unvalidated run (the damaged floats stay finite) but
is caught by the momentum-conservation check at ``decomp/exchange``,
which under the ``dump`` policy writes a loadable diagnostic checkpoint
naming the corrupted stage before aborting.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.config import (
    DomainConfig,
    PMConfig,
    SimulationConfig,
    TreeConfig,
    TreePMConfig,
    ValidationConfig,
)
from repro.mpi.faults import FaultPlan
from repro.sim.checkpoint import (
    CheckpointError,
    latest_checkpoint,
    load_distributed_checkpoint,
    read_rank_file,
    validate_checkpoint,
)
from repro.sim.parallel import run_parallel_simulation
from repro.sim.serial import SerialSimulation
from repro.validate import InvariantViolation, InvariantWarning

pytestmark = [pytest.mark.faults, pytest.mark.timeout(120)]

N = 96


def _cfg(policy="off", divisions=(2, 1, 1), **vkw):
    return SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.5, group_size=32),
            pm=PMConfig(mesh_size=16),
            softening=5e-3,
        ),
        domain=DomainConfig(
            divisions=divisions, sample_rate=0.3, cost_balance=False
        ),
        validation=ValidationConfig(policy=policy, **vkw),
    )


def _ics(seed=31, n=N):
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 3))
    mom = 0.01 * rng.standard_normal((n, 3))
    mass = np.full(n, 1.0 / n)
    return pos, mom, mass


def _corruption_plan():
    """Corrupt the momentum field of every rank0 -> rank1 particle
    exchange payload (silent data corruption: the floats stay finite)."""
    return FaultPlan(seed=3).corrupt_messages(
        src=0, dst=1, count=10**6, key="mom"
    )


class TestCleanRuns:
    def test_clean_run_passes_under_abort(self):
        pos, mom, mass = _ics()
        p, m, w, sims, _ = run_parallel_simulation(
            _cfg("abort"), pos, mom, mass, 0.0, 0.08, n_steps=2
        )
        assert all(s.steps_taken == 2 for s in sims)
        assert np.isfinite(p).all()

    def test_validation_off_is_default_and_inert(self):
        cfg = _cfg()
        assert not cfg.validation.enabled


class TestCorruptionDetection:
    def test_corrupted_run_completes_silently_without_validation(self):
        pos, mom, mass = _ics()
        p, m, w, sims, _ = run_parallel_simulation(
            _cfg("off"), pos, mom, mass, 0.0, 0.02, n_steps=2,
            fault_plan=_corruption_plan(),
        )
        # the whole point: silent corruption really is silent
        assert all(s.steps_taken == 2 for s in sims)

    def test_abort_policy_names_stage_and_rank(self):
        pos, mom, mass = _ics()
        with pytest.raises(RuntimeError) as ei:
            run_parallel_simulation(
                _cfg("abort"), pos, mom, mass, 0.0, 0.02, n_steps=2,
                fault_plan=_corruption_plan(),
            )
        violations = [
            e for e in ei.value.rank_errors.values()
            if isinstance(e, InvariantViolation)
        ]
        assert violations, f"no InvariantViolation in {ei.value.rank_errors}"
        v = violations[0]
        assert v.check == "momentum_conservation"
        assert v.stage == "decomp/exchange"
        assert v.step is not None and v.rank is not None

    def test_dump_policy_writes_loadable_diagnostic_checkpoint(self, tmp_path):
        pos, mom, mass = _ics()
        dump_dir = tmp_path / "diag"
        with pytest.raises(RuntimeError) as ei:
            run_parallel_simulation(
                _cfg("dump", dump_dir=str(dump_dir)),
                pos, mom, mass, 0.0, 0.02, n_steps=2,
                fault_plan=_corruption_plan(),
            )
        violations = [
            e for e in ei.value.rank_errors.values()
            if isinstance(e, InvariantViolation)
        ]
        assert violations and violations[0].dump_path is not None

        # the dump is a complete, strictly-loadable checkpoint set whose
        # manifest names the corrupted stage
        step_dir = latest_checkpoint(dump_dir)
        manifest = validate_checkpoint(step_dir)
        assert manifest["violation"]["check"] == "momentum_conservation"
        assert manifest["violation"]["stage"] == "decomp/exchange"
        merged = load_distributed_checkpoint(step_dir, strict=True)
        assert len(merged["ids"]) == N

    def test_warn_policy_completes_with_warning(self):
        pos, mom, mass = _ics()
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            p, m, w, sims, _ = run_parallel_simulation(
                _cfg("warn"), pos, mom, mass, 0.0, 0.02, n_steps=2,
                fault_plan=_corruption_plan(),
            )
        assert all(s.steps_taken == 2 for s in sims)
        hits = [r for r in rec if issubclass(r.category, InvariantWarning)]
        assert hits and "momentum" in str(hits[0].message)


class TestStrictCheckpointLoad:
    def test_hand_corrupted_rank_file_rejected_in_strict_mode(self, tmp_path):
        pos, mom, mass = _ics()
        ck = tmp_path / "ck"
        run_parallel_simulation(
            _cfg(), pos, mom, mass, 0.0, 0.02, n_steps=2,
            checkpoint_every=2, checkpoint_dir=ck,
        )
        step_dir = latest_checkpoint(ck)
        # rewrite one rank file with a NaN momentum but valid checksums
        name = sorted(p.name for p in step_dir.glob("rank_*.npz"))[0]
        arrays, meta = read_rank_file(step_dir / name)
        arrays = {k: np.array(v) for k, v in arrays.items()}
        arrays["mom"][0, 0] = np.nan
        from repro.sim.checkpoint import write_rank_file

        write_rank_file(step_dir / name, arrays, meta)

        # default load (no strict) passes the per-array checksums
        read_rank_file(step_dir / name)
        # strict load rejects, naming the array
        with pytest.raises(CheckpointError, match="mom"):
            read_rank_file(step_dir / name, strict=True)
        with pytest.raises(CheckpointError, match="mom"):
            load_distributed_checkpoint(step_dir, verify=False, strict=True)


class TestSerialMonitors:
    def _sim(self, policy="abort", n=128, **vkw):
        rng = np.random.default_rng(7)
        pos = rng.random((n, 3))
        cfg = SimulationConfig(
            treepm=TreePMConfig(pm=PMConfig(mesh_size=16), softening=5e-3),
            validation=ValidationConfig(policy=policy, **vkw),
        )
        return SerialSimulation(
            cfg, pos, np.zeros((n, 3)), np.full(n, 1.0 / n)
        )

    def test_energy_monitor_clean_run(self):
        sim = self._sim(energy_interval=1)
        sim.run(0.0, 0.005, n_steps=4)  # modest steps: drift stays tiny
        assert sim.steps_taken == 4
        assert sim.energy_monitor.e0 is not None

    def test_energy_monitor_trips_on_pathological_timestep(self):
        sim = self._sim(energy_interval=1)
        with pytest.raises(InvariantViolation) as ei:
            sim.run(0.0, 0.8, n_steps=4)  # wildly too large steps
        assert ei.value.check == "energy_drift"

    def test_energy_monitor_off_by_default(self):
        sim = self._sim()  # energy_interval defaults to 0
        sim.run(0.0, 0.8, n_steps=2)
        assert sim.energy_monitor.e0 is None

    def test_serial_dump_writes_snapshot(self, tmp_path):
        dump = tmp_path / "diag"
        sim = self._sim(policy="dump", energy_interval=1, dump_dir=str(dump))
        with pytest.raises(InvariantViolation) as ei:
            sim.run(0.0, 0.8, n_steps=4)
        assert ei.value.dump_path is not None
        from repro.sim.io import load_snapshot

        p, m, w, header = load_snapshot(ei.value.dump_path, strict=True)
        assert header.extra["violation"]["check"] == "energy_drift"

    def test_energy_monitor_clean_cosmological_run(self):
        """A Zel'dovich plane wave in EdS integrates cleanly under
        ``abort`` with the energy monitor on at default tolerance."""
        from repro.cosmology.params import EINSTEIN_DE_SITTER
        from repro.ic.zeldovich import particle_mass
        from repro.integrate.stepper import CosmoStepper

        npd = 8
        g = (np.arange(npd) + 0.5) / npd
        q = np.stack(np.meshgrid(g, g, g, indexing="ij"), -1).reshape(-1, 3)
        psi = np.zeros_like(q)
        psi[:, 0] = 0.004 * np.cos(2 * np.pi * q[:, 0])
        a0, a1 = 0.02, 0.04
        cfg = SimulationConfig(
            treepm=TreePMConfig(
                tree=TreeConfig(opening_angle=0.3),
                pm=PMConfig(mesh_size=16),
                softening=1e-3,
            ),
            validation=ValidationConfig(policy="abort", energy_interval=1),
        )
        sim = SerialSimulation(
            cfg,
            np.mod(q + a0 * psi, 1.0),
            a0**1.5 * psi,
            np.full(len(q), particle_mass(EINSTEIN_DE_SITTER, len(q))),
            stepper=CosmoStepper(EINSTEIN_DE_SITTER),
        )
        sim.run(a0, a1, n_steps=8)
        assert sim.steps_taken == 8
        assert sim.energy_monitor.tracker.n_samples == 8
        assert sim.energy_monitor.tracker.relative_violation() < 0.25

    def test_octree_satellite_zero_mass_fallback_only(self):
        # zero-mass nodes still get the geometric-center fallback
        from repro.tree.octree import Octree

        rng = np.random.default_rng(5)
        pos = rng.random((32, 3))
        tree = Octree(pos, np.zeros(32))
        assert np.isfinite(tree.node_com).all()
        # but a NaN mass on a massive node surfaces as a violation
        mass = np.ones(32)
        mass[3] = np.nan
        with pytest.raises(InvariantViolation) as ei:
            Octree(pos, mass)
        assert ei.value.check == "octree_moments"
        assert ei.value.stage == "tree/moments"
