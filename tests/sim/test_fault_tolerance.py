"""End-to-end fault tolerance: kill a rank mid-run, restart from the
last distributed checkpoint, and recover the uninterrupted trajectory.

``cost_balance=False`` keeps the sampling decomposition independent of
measured wall-clock, which is what makes same-rank-count resume
bit-for-bit reproducible.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import (
    DomainConfig,
    PMConfig,
    SimulationConfig,
    TreeConfig,
    TreePMConfig,
)
from repro.mpi.faults import FaultPlan, InjectedFault
from repro.sim.checkpoint import (
    CheckpointError,
    MANIFEST_NAME,
    latest_checkpoint,
    load_distributed_checkpoint,
    rank_filename,
    validate_checkpoint,
)
from repro.sim.parallel import (
    resume_parallel_simulation,
    run_parallel_simulation,
)

pytestmark = [pytest.mark.faults, pytest.mark.timeout(120)]

N = 96


def _cfg(divisions=(2, 1, 1)):
    return SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.5, group_size=32),
            pm=PMConfig(mesh_size=16),
            softening=5e-3,
        ),
        domain=DomainConfig(
            divisions=divisions, sample_rate=0.3, cost_balance=False
        ),
    )


def _ics(seed=31, n=N):
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 3))
    mom = 0.01 * rng.standard_normal((n, 3))
    mass = np.full(n, 1.0 / n)
    return pos, mom, mass


class TestKillAndResume:
    def test_rank_killed_then_resume_same_rank_count_bit_for_bit(self, tmp_path):
        pos, mom, mass = _ics()

        # reference: uninterrupted 4-step run
        p_ref, m_ref, _, _, _ = run_parallel_simulation(
            _cfg(), pos, mom, mass, 0.0, 0.16, n_steps=4
        )

        # faulted run: rank 1 dies entering step 2; checkpoints at 1, 2
        ck = tmp_path / "ck"
        plan = FaultPlan().kill_rank(1, step=2)
        with pytest.raises(RuntimeError, match="rank 1") as ei:
            run_parallel_simulation(
                _cfg(), pos, mom, mass, 0.0, 0.16, n_steps=4,
                checkpoint_every=1, checkpoint_dir=ck, fault_plan=plan,
            )
        assert isinstance(ei.value.rank_errors[1], InjectedFault)

        # the last complete checkpoint is step 2 (written before the kill)
        step_dir = latest_checkpoint(ck)
        assert step_dir.name == "step_00002"
        validate_checkpoint(step_dir)

        # resume on the same rank count: bit-for-bit identical finish
        p_res, m_res, w_res, sims, _ = resume_parallel_simulation(_cfg(), ck)
        assert all(s.steps_taken == 4 for s in sims)
        assert np.array_equal(p_res, p_ref)
        assert np.array_equal(m_res, m_ref)
        np.testing.assert_array_equal(w_res, mass)

    def test_resume_on_different_rank_count(self, tmp_path):
        pos, mom, mass = _ics(seed=7)

        p_ref, m_ref, _, _, _ = run_parallel_simulation(
            _cfg(), pos, mom, mass, 0.0, 0.16, n_steps=4
        )

        ck = tmp_path / "ck"
        plan = FaultPlan().kill_rank(0, step=2)
        with pytest.raises(RuntimeError, match="rank 0"):
            run_parallel_simulation(
                _cfg(), pos, mom, mass, 0.0, 0.16, n_steps=4,
                checkpoint_every=2, checkpoint_dir=ck, fault_plan=plan,
            )

        # written with 2 ranks, resumed with 4: merged state is
        # re-decomposed, so agreement is to float tolerance, not bits
        p_res, m_res, _, sims, _ = resume_parallel_simulation(
            _cfg(divisions=(2, 2, 1)), ck
        )
        assert len(sims) == 4
        d = np.abs(p_res - p_ref)
        d = np.minimum(d, 1.0 - d)  # periodic wrap
        assert d.max() < 1e-9
        np.testing.assert_allclose(m_res, m_ref, atol=1e-9)

    def test_resume_refuses_different_physics_config(self, tmp_path):
        pos, mom, mass = _ics(seed=5)
        ck = tmp_path / "ck"
        run_parallel_simulation(
            _cfg(), pos, mom, mass, 0.0, 0.08, n_steps=2,
            checkpoint_every=1, checkpoint_dir=ck,
        )
        other = _cfg().with_(
            treepm=TreePMConfig(
                tree=TreeConfig(opening_angle=0.5, group_size=32),
                pm=PMConfig(mesh_size=16),
                softening=1e-2,
            )
        )
        with pytest.raises(RuntimeError, match="configuration"):
            resume_parallel_simulation(other, ck)


class TestCheckpointIntegrity:
    def _write_checkpoint(self, tmp_path, n_steps=2):
        pos, mom, mass = _ics(seed=11)
        ck = tmp_path / "ck"
        run_parallel_simulation(
            _cfg(), pos, mom, mass, 0.0, 0.08, n_steps=n_steps,
            checkpoint_every=1, checkpoint_dir=ck,
        )
        return ck

    def test_corrupted_rank_file_detected(self, tmp_path):
        ck = self._write_checkpoint(tmp_path)
        step_dir = latest_checkpoint(ck)
        target = step_dir / rank_filename(1, 2)
        raw = bytearray(target.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        target.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="corrupt"):
            validate_checkpoint(step_dir)
        with pytest.raises(RuntimeError, match="corrupt"):
            resume_parallel_simulation(_cfg(), ck)

    def test_torn_checkpoint_detected(self, tmp_path):
        ck = self._write_checkpoint(tmp_path)
        step_dir = latest_checkpoint(ck)
        (step_dir / rank_filename(0, 2)).unlink()
        with pytest.raises(CheckpointError, match="torn"):
            validate_checkpoint(step_dir)

    def test_incomplete_step_dir_not_selected_as_latest(self, tmp_path):
        """A step directory without a manifest (interrupted before the
        manifest write) must not shadow the last complete checkpoint."""
        ck = self._write_checkpoint(tmp_path)
        good = latest_checkpoint(ck)
        torn = ck / "step_00099"
        torn.mkdir()
        (torn / rank_filename(0, 2)).write_bytes(b"partial garbage")
        assert latest_checkpoint(ck) == good

    def test_manifest_contents(self, tmp_path):
        ck = self._write_checkpoint(tmp_path)
        step_dir = latest_checkpoint(ck)
        manifest = json.loads((step_dir / MANIFEST_NAME).read_text())
        assert manifest["n_ranks"] == 2
        assert manifest["total_particles"] == N
        assert manifest["schedule"]["next_step"] == 2
        assert len(manifest["files"]) == 2
        for entry in manifest["files"]:
            assert len(entry["sha256"]) == 64  # hex digest

    def test_load_distributed_checkpoint_merges_in_id_order(self, tmp_path):
        ck = self._write_checkpoint(tmp_path)
        merged = load_distributed_checkpoint(latest_checkpoint(ck))
        assert merged["pos"].shape == (N, 3)
        np.testing.assert_array_equal(merged["ids"], np.arange(N))


class TestNoCheckpointToResume:
    def test_missing_directory_raises_cleanly(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            resume_parallel_simulation(_cfg(), tmp_path / "nonexistent")
