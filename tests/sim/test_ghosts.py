"""Tests of ghost-particle exchange."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomp.multisection import MultisectionDecomposition
from repro.mpi.runtime import run_spmd
from repro.sim.ghosts import distance_to_domain, exchange_ghosts


class TestDistanceToDomain:
    def test_inside_is_zero(self):
        lo, hi = np.array([0.2, 0.2, 0.2]), np.array([0.6, 0.6, 0.6])
        pos = np.array([[0.3, 0.4, 0.5]])
        assert distance_to_domain(pos, lo, hi)[0] == 0.0

    def test_axis_aligned_distance(self):
        lo, hi = np.array([0.2, 0.0, 0.0]), np.array([0.6, 1.0, 1.0])
        pos = np.array([[0.7, 0.5, 0.5]])
        assert distance_to_domain(pos, lo, hi)[0] == pytest.approx(0.1)

    def test_corner_distance(self):
        lo, hi = np.array([0.2, 0.2, 0.0]), np.array([0.6, 0.6, 1.0])
        pos = np.array([[0.7, 0.7, 0.5]])
        assert distance_to_domain(pos, lo, hi)[0] == pytest.approx(
            np.sqrt(2) * 0.1
        )

    def test_periodic_wrap(self):
        """A point near x=1 is close to a domain starting at x=0."""
        lo, hi = np.array([0.0, 0.0, 0.0]), np.array([0.3, 1.0, 1.0])
        pos = np.array([[0.95, 0.5, 0.5]])
        assert distance_to_domain(pos, lo, hi)[0] == pytest.approx(0.05)

    def test_vectorized(self, rng):
        lo, hi = np.array([0.4, 0.4, 0.4]), np.array([0.6, 0.6, 0.6])
        pos = rng.random((100, 3))
        d = distance_to_domain(pos, lo, hi)
        assert d.shape == (100,)
        assert np.all(d >= 0)
        assert np.all(d <= np.sqrt(3) / 2 + 1e-12)


class TestExchangeGhosts:
    def test_ghosts_cover_cutoff_shell(self):
        """Every remote particle within rcut of the domain arrives."""
        rng = np.random.default_rng(0)
        allpos = rng.random((300, 3))
        allmass = rng.random(300)
        decomp = MultisectionDecomposition.uniform((2, 2, 1))
        owners = decomp.owner_of(allpos)
        rcut = 0.1

        def fn(comm):
            sel = owners == comm.rank
            gpos, gmass = exchange_ghosts(
                comm, decomp, allpos[sel], allmass[sel], rcut
            )
            return gpos, gmass

        out = run_spmd(4, fn)
        for r, (gpos, gmass) in enumerate(out):
            lo, hi = decomp.domain_bounds(r)
            remote = owners != r
            expected = remote & (distance_to_domain(allpos, lo, hi) <= rcut)
            assert len(gpos) == expected.sum()
            # every expected ghost is present (set comparison by mass)
            np.testing.assert_allclose(
                np.sort(gmass), np.sort(allmass[expected]), atol=0
            )

    def test_no_self_ghosts(self):
        pos = np.array([[0.1, 0.5, 0.5]])
        decomp = MultisectionDecomposition.uniform((1, 1, 1))

        def fn(comm):
            return exchange_ghosts(comm, decomp, pos, np.ones(1), 0.2)

        gpos, gmass = run_spmd(1, fn)[0]
        assert len(gpos) == 0

    def test_invalid_rcut(self):
        decomp = MultisectionDecomposition.uniform((1, 1, 1))

        def fn(comm):
            exchange_ghosts(comm, decomp, np.zeros((1, 3)), np.ones(1), 0.0)

        with pytest.raises(RuntimeError):
            run_spmd(1, fn)
