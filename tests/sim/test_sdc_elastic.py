"""End-to-end SDC injection matrix for the elastic runner.

Every corruption kind the fault plan can schedule — in-memory bit
flips against the live arrays or the frozen rollback copies, SHM
transport frame corruption, on-disk checkpoint bit-rot — must be
*detected*, *attributed* and *healed* (in place where a clean copy
survives, by rollback or disk restore otherwise), and the run must
still finish its schedule."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (
    DomainConfig,
    PMConfig,
    SdcConfig,
    SimulationConfig,
    TreePMConfig,
)
from repro.mpi.faults import FaultPlan
from repro.sim import checkpoint as _ckpt
from repro.sim.elastic import run_elastic_simulation
from repro.validate.sdc import SdcViolation

pytestmark = [pytest.mark.faults, pytest.mark.timeout(300)]

N = 96
N_STEPS = 4
T_END = 0.04


def _cfg(n_ranks=2, policy="heal", audit_every=1, keep_last=0, spot=2):
    return SimulationConfig(
        domain=DomainConfig(
            divisions=(n_ranks, 1, 1), sample_rate=0.3, cost_balance=False
        ),
        treepm=TreePMConfig(pm=PMConfig(mesh_size=16)),
        sdc=SdcConfig(
            policy=policy,
            audit_every=audit_every,
            spot_check_groups=spot,
            keep_last=keep_last,
        ),
    )


def _system(seed=5):
    rng = np.random.default_rng(seed)
    return (
        rng.random((N, 3)),
        rng.normal(scale=0.01, size=(N, 3)),
        np.full(N, 1.0 / N),
    )


def _run(plan, policy="heal", backend="thread", ckpt=None, every=None,
         keep_last=0, audit_every=1):
    pos, mom, mass = _system()
    return run_elastic_simulation(
        _cfg(policy=policy, keep_last=keep_last, audit_every=audit_every),
        pos, mom, mass, 0.0, T_END, N_STEPS,
        fault_plan=plan,
        buddy_every=1,
        checkpoint_dir=ckpt,
        checkpoint_every=every,
        recv_timeout=10.0,
        backend=backend,
    )


def _events(runner):
    evs = getattr(runner, "sdc", None)
    if evs is not None:
        return [ev.summary() for ev in evs.events]
    return list(runner.sdc_events)


class TestSnapshotFlipHealing:
    """Flips against the frozen rollback copies: detected by the digest
    cross-check, attributed by the two-out-of-three vote, healed in
    place — no shrink, no rollback."""

    def test_self_copy_flip_attributed_to_owner(self):
        plan = FaultPlan(seed=1).flip_bits(
            0, "mass", step=1, target="self_copy"
        )
        p, m, w, runners, _ = _run(plan)
        assert len(p) == N
        for r in runners:
            assert r.events == []  # healed in place: zero recoveries
            snap = [e for e in _events(r) if e["kind"] == "snapshot"]
            assert len(snap) == 1
            assert snap[0]["attribution"] == "owner"
            assert snap[0]["owner_world_rank"] == 0
            assert snap[0]["healed"]

    def test_peer_copy_flip_attributed_to_buddy(self):
        plan = FaultPlan(seed=1).flip_bits(
            1, "mass", step=1, target="peer_copy"
        )
        p, m, w, runners, _ = _run(plan)
        for r in runners:
            assert r.events == []
            snap = [e for e in _events(r) if e["kind"] == "snapshot"]
            assert len(snap) == 1
            assert snap[0]["attribution"] == "buddy"
            assert snap[0]["healed"]

    def test_healed_run_matches_fault_free_run(self):
        plan = FaultPlan(seed=1).flip_bits(
            0, "pos", step=1, target="self_copy"
        )
        p0, m0, w0, _, _ = _run(None)
        p1, m1, w1, _, _ = _run(plan)
        # the live trajectory never saw the corruption: bit-identical
        order0, order1 = np.lexsort(p0.T), np.lexsort(p1.T)
        np.testing.assert_array_equal(p0[order0], p1[order1])
        np.testing.assert_array_equal(m0[order0], m1[order1])

    def test_clean_run_has_no_events(self):
        _, _, _, runners, _ = _run(None)
        for r in runners:
            assert _events(r) == []


class TestLiveFlipRollback:
    """Flips against the live conserved arrays: the fingerprint audit
    detects them, and the only heal is a rollback to the last verified
    boundary."""

    def test_mass_flip_detected_and_rolled_back(self):
        plan = FaultPlan(seed=1).flip_bits(0, "mass", step=1, target="live")
        p, m, w, runners, _ = _run(plan)
        assert len(p) == N
        assert w.sum() == pytest.approx(1.0, rel=1e-13)
        for r in runners:
            assert [e.mode for e in r.events] == ["rollback"]
            fp = [e for e in _events(r) if e["kind"] == "fingerprint"]
            assert len(fp) == 1
            assert fp[0]["attribution"] == "live"
            assert fp[0]["healed"]
            assert "healed by rollback" in fp[0]["detail"]

    def test_warn_policy_records_without_recovering(self):
        plan = FaultPlan(seed=1).flip_bits(0, "mass", step=1, target="live")
        with pytest.warns(Warning):
            p, m, w, runners, _ = _run(plan, policy="warn")
        assert len(p) == N
        for r in runners:
            assert r.events == []
            fp = [e for e in _events(r) if e["kind"] == "fingerprint"]
            assert fp and not fp[0]["healed"]

    def test_abort_policy_terminates_the_run(self):
        plan = FaultPlan(seed=1).flip_bits(0, "mass", step=1, target="live")
        with pytest.raises((SdcViolation, RuntimeError)):
            _run(plan, policy="abort")

    def test_off_policy_sees_nothing(self):
        plan = FaultPlan(seed=1).flip_bits(0, "mass", step=1, target="live")
        p, m, w, runners, _ = _run(plan, policy="off")
        for r in runners:
            assert _events(r) == []
            assert r.events == []


class TestKillAnywhereSdcProperty:
    """A single bit flip — any detectable array, any copy, any step —
    must be detected within one audit interval and healed, and the run
    must finish the full schedule with the particle count intact."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        rank=st.integers(min_value=0, max_value=1),
        step=st.integers(min_value=1, max_value=N_STEPS - 1),
        data=st.data(),
    )
    def test_flip_detected_and_healed(self, rank, step, data):
        target = data.draw(
            st.sampled_from(["live", "self_copy", "peer_copy"])
        )
        # live pos/mom are not conserved quantities: only ids/mass are
        # fingerprint-detectable (a documented limitation)
        array = data.draw(
            st.sampled_from(
                ["ids", "mass"]
                if target == "live"
                else ["pos", "mom", "mass", "ids"]
            )
        )
        plan = FaultPlan(seed=3).flip_bits(rank, array, step=step, target=target)
        p, m, w, runners, _ = _run(plan)
        assert len(p) == N
        detected = [e for r in runners for e in _events(r)]
        assert detected, f"flip of {array} ({target}) at step {step} missed"
        assert all(e["healed"] for e in detected)
        if target != "live":
            for r in runners:
                assert r.events == []  # in-place heal, no recovery round


class TestCheckpointRotMatrix:
    def test_rot_detected_by_scrub_and_skipped_on_restore(self, tmp_path):
        plan = FaultPlan(seed=1).rot_checkpoint(0, step=2)
        p, m, w, runners, _ = _run(
            plan, ckpt=tmp_path, every=1, keep_last=3
        )
        assert len(p) == N
        reports = _ckpt.scrub_checkpoints(tmp_path)
        assert len(reports) == 3  # keep_last retention applied
        bad = [r for r in reports if not r["ok"]]
        assert len(bad) == 1
        assert "step_00002" in str(bad[0]["step_dir"])
        # restore-time defense: the rotted epoch is skipped
        good = _ckpt.newest_valid_checkpoint(tmp_path)
        assert "step_00002" not in str(good)

    def test_rot_disk_fallback_restores_older_epoch(self, tmp_path):
        # rot the final epoch, then force a disk restore by also
        # flipping live state after the last buddy refresh window
        plan = (
            FaultPlan(seed=2)
            .rot_checkpoint(0, step=2)
            .rot_checkpoint(1, step=2)
        )
        p, m, w, runners, _ = _run(plan, ckpt=tmp_path, every=1, keep_last=4)
        reports = _ckpt.scrub_checkpoints(tmp_path)
        assert sum(not r["ok"] for r in reports) == 1


class TestMultiprocessTransportCorruption:
    def test_shm_burst_heals_through_disk_fallback(self, tmp_path):
        from repro.mpi.mp_backend import MultiprocessBackend

        plan = FaultPlan(seed=5).corrupt_shm(src=0, dst=1, nth=1, count=4)
        backend = MultiprocessBackend(
            2,
            fault_plan=plan,
            recv_timeout=2.0,
            elastic=True,
            shm_threshold=1,
        )
        p, m, w, reports, _ = _run(
            plan, backend=backend, ckpt=tmp_path, every=2
        )
        assert len(p) == N
        modes = {e.mode for r in reports for e in r.events}
        assert "disk" in modes or "rollback" in modes
        transport = [
            e
            for r in reports
            for e in _events(r)
            if e["kind"] == "transport"
        ]
        assert transport
        assert all(e["attribution"] == "transport" for e in transport)
        assert all(e["healed"] for e in transport)
