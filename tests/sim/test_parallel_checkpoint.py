"""Checkpoint/resume of the distributed simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    DomainConfig,
    PMConfig,
    SimulationConfig,
    TreeConfig,
    TreePMConfig,
)
from repro.sim.io import SnapshotHeader, load_snapshot, save_snapshot
from repro.sim.parallel import run_parallel_simulation


def _cfg():
    return SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.5, group_size=32),
            pm=PMConfig(mesh_size=16),
            softening=5e-3,
        ),
        domain=DomainConfig(divisions=(2, 1, 1), sample_rate=0.3),
    )


class TestParallelCheckpoint:
    def test_gather_save_resume(self, tmp_path):
        rng = np.random.default_rng(31)
        pos = rng.random((96, 3))
        mom = 0.01 * rng.standard_normal((96, 3))
        mass = np.full(96, 1.0 / 96)

        # straight run: 2 steps
        p_ref, m_ref, _, _, _ = run_parallel_simulation(
            _cfg(), pos, mom, mass, 0.0, 0.08, n_steps=2
        )

        # 1 step, gather, snapshot, reload, 1 more step
        p1, m1, w1, _, _ = run_parallel_simulation(
            _cfg(), pos, mom, mass, 0.0, 0.04, n_steps=1
        )
        path = tmp_path / "parallel_ckpt.npz"
        save_snapshot(
            path, p1, m1, w1, SnapshotHeader(time=0.04, n_particles=96, step=1)
        )
        p2, m2, w2, hdr = load_snapshot(path)
        p_res, m_res, _, _, _ = run_parallel_simulation(
            _cfg(), p2, m2, w2, hdr.time, 0.08, n_steps=1
        )

        # the resumed trajectory matches the straight one up to the
        # floating-point reordering of a fresh decomposition
        d = np.abs(p_res - p_ref)
        d = np.minimum(d, 1.0 - d)
        assert d.max() < 1e-6
        np.testing.assert_allclose(m_res, m_ref, atol=1e-5)

    def test_gathered_state_is_id_ordered(self):
        """gather_state returns the original global ordering, so
        checkpoints are rank-count independent."""
        rng = np.random.default_rng(32)
        pos = rng.random((64, 3))
        mom = np.zeros((64, 3))
        mass = np.full(64, 1.0 / 64)
        out = {}
        for div in ((2, 1, 1), (2, 2, 1)):
            cfg = _cfg().with_(
                domain=DomainConfig(divisions=div, sample_rate=0.3)
            )
            p, m, w, _, _ = run_parallel_simulation(
                cfg, pos, mom, mass, 0.0, 0.04, n_steps=1
            )
            out[div] = p
        d = np.abs(out[(2, 1, 1)] - out[(2, 2, 1)])
        d = np.minimum(d, 1.0 - d)
        assert d.max() < 1e-7
