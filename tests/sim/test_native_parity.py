"""Cross-stage native/python parity and timing-ledger accounting.

The tentpole guarantee of the native hot path: every per-stage kernel is
individually optional, and *any* combination of opt-outs produces
bitwise-identical trajectories — positions, momenta, and energy — to the
all-python path.  The timing ledger must meanwhile account for the full
step under the same phase keys on both paths (nothing lumped into an
"other" bucket).
"""

from __future__ import annotations

import itertools
import time

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.integrate.leapfrog import UPDATE_PHASE
from repro.sim.serial import SerialSimulation

STAGES = ["TREE", "TRAVERSE", "MESH", "UPDATE", "PP"]


@pytest.fixture(scope="module")
def initial_state():
    rng = np.random.default_rng(20120831)
    pos = np.mod(
        np.vstack(
            [0.5 + 0.06 * rng.standard_normal((160, 3)), rng.random((80, 3))]
        ),
        1.0,
    )
    mom = 0.02 * rng.standard_normal(pos.shape)
    mass = np.full(len(pos), 1.0 / len(pos))
    return pos, mom, mass


def _config(mesh: int = 8) -> SimulationConfig:
    return SimulationConfig.from_dict(
        {"treepm": {"pm": {"mesh_size": mesh}}, "pp_subcycles": 2}
    )


def _run(initial_state, n_steps: int = 2):
    pos, mom, mass = initial_state
    sim = SerialSimulation(_config(), pos, mom, mass)
    sim.run(0.0, 0.02, n_steps)
    return sim


def test_all_opt_out_combinations_bitwise(initial_state, monkeypatch):
    """2^5 combinations of per-stage opt-outs, one short run each, all
    bitwise identical to the all-python trajectory."""
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    ref = _run(initial_state)
    ref_energy = ref.total_energy()
    monkeypatch.delenv("REPRO_NO_NATIVE")

    for combo in itertools.product([False, True], repeat=len(STAGES)):
        for stage, off in zip(STAGES, combo):
            var = f"REPRO_NO_NATIVE_{stage}"
            if off:
                monkeypatch.setenv(var, "1")
            else:
                monkeypatch.delenv(var, raising=False)
        sim = _run(initial_state)
        label = ",".join(s for s, off in zip(STAGES, combo) if off) or "none"
        assert np.array_equal(sim.pos, ref.pos), f"pos mismatch (off: {label})"
        assert np.array_equal(sim.mom, ref.mom), f"mom mismatch (off: {label})"
        assert sim.total_energy() == ref_energy, f"energy mismatch (off: {label})"


@pytest.mark.parametrize("no_native", [False, True])
def test_ledger_accounts_for_wall_time(initial_state, monkeypatch, no_native):
    """The per-step ledger must sum to the measured wall time within
    tolerance on both paths — native kernels report under the same
    phase keys as the python pipeline, nothing disappears."""
    if no_native:
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    pos, mom, mass = initial_state
    sim = SerialSimulation(_config(mesh=16), pos, mom, mass)
    sim.step(0.0, 0.01)  # warmup: compiles, self-tests, scratch allocs
    warm = sim.timing.total()
    t0 = time.perf_counter()
    sim.run(0.01, 0.05, 4)
    wall = time.perf_counter() - t0
    recorded = sim.timing.total() - warm
    assert recorded <= wall * 1.05
    assert recorded >= wall * 0.5, (
        f"ledger covers only {recorded / wall:.0%} of the step wall time"
    )
    keys = sim.timing.as_dict()
    for phase in [
        "PM/density assignment",
        "PM/FFT",
        "PM/acceleration on mesh",
        "PM/force interpolation",
        "PP/tree construction",
        "PP/tree traversal",
        "PP/force calculation",
        UPDATE_PHASE,
    ]:
        assert phase in keys, f"missing ledger phase {phase!r}"
        assert keys[phase] > 0.0
    assert not any("other" in k.lower() for k in keys)


def test_update_phase_present_on_both_paths(initial_state, monkeypatch):
    """The fused kick-drift arithmetic reports under Update/kick-drift
    whether or not the native kernel runs."""
    for env in (None, "1"):
        if env:
            monkeypatch.setenv("REPRO_NO_NATIVE_UPDATE", env)
        else:
            monkeypatch.delenv("REPRO_NO_NATIVE_UPDATE", raising=False)
        sim = _run(initial_state, n_steps=1)
        assert sim.timing.get(UPDATE_PHASE) > 0.0
