"""Tests of the serial simulation driver, including the plane-wave
(Zel'dovich) linear-growth validation of the whole stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PMConfig, SimulationConfig, TreeConfig, TreePMConfig
from repro.cosmology.params import EINSTEIN_DE_SITTER
from repro.integrate.stepper import CosmoStepper, StaticStepper
from repro.ic.zeldovich import particle_mass
from repro.sim.serial import SerialSimulation


def _config(mesh=16, softening=2e-3, theta=0.4):
    return SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=theta, group_size=32),
            pm=PMConfig(mesh_size=mesh),
            rcut_mesh_units=3.0,
            softening=softening,
        ),
        pp_subcycles=2,
    )


class TestSerialBasics:
    def test_state_validation(self):
        with pytest.raises(ValueError):
            SerialSimulation(
                _config(), np.zeros((2, 3)), np.zeros((1, 3)), np.ones(2)
            )

    def test_run_advances_steps(self, uniform_particles):
        pos, mass = uniform_particles
        sim = SerialSimulation(_config(), pos, np.zeros_like(pos), mass)
        sim.run(0.0, 0.02, n_steps=2)
        assert sim.steps_taken == 2

    def test_positions_stay_in_box(self, uniform_particles):
        pos, mass = uniform_particles
        rng = np.random.default_rng(0)
        mom = 0.1 * rng.standard_normal(pos.shape)
        sim = SerialSimulation(_config(), pos, mom, mass)
        sim.run(0.0, 0.1, n_steps=3)
        assert np.all((sim.pos >= 0) & (sim.pos < 1))

    def test_momentum_nearly_conserved(self, clustered_particles):
        pos, mass = clustered_particles
        sim = SerialSimulation(_config(), pos, np.zeros_like(pos), mass)
        sim.run(0.0, 0.05, n_steps=3)
        ptot = np.abs((mass[:, None] * sim.mom).sum(axis=0)).max()
        pscale = np.abs(mass[:, None] * sim.mom).sum()
        assert ptot < 0.02 * max(pscale, 1e-30)

    def test_timing_rows_accumulate(self, uniform_particles):
        pos, mass = uniform_particles
        sim = SerialSimulation(_config(), pos, np.zeros_like(pos), mass)
        sim.run(0.0, 0.01, n_steps=1)
        t = sim.timing.as_dict()
        assert t["PM/FFT"] > 0
        assert t["PP/force calculation"] > 0
        assert t["PP/tree construction"] > 0

    def test_energy_roughly_conserved_static(self, rng):
        """Static Newtonian run from cold uniform initial conditions:
        the energy drift stays a small fraction of the kinetic energy
        the collapse generates.  (TreePM forces are not exact
        gradients, so the bound is approximate, not machine-level.)"""
        pos = rng.random((64, 3))
        mass = np.full(64, 1.0 / 64)
        sim = SerialSimulation(_config(softening=2e-2), pos, np.zeros_like(pos), mass)
        e0 = sim.total_energy()
        sim.run(0.0, 0.5, n_steps=40)
        drift = abs(sim.total_energy() - e0)
        assert drift < 0.15 * sim.kinetic_energy()


class TestPlaneWaveGrowth:
    """The canonical cosmological validation: a single Zel'dovich
    plane wave must grow with the linear growth factor (exactly a in
    EdS) until shell crossing.  This exercises ICs, the TreePM force,
    the comoving integrator and the cosmology modules together."""

    def _setup(self, a_init, amplitude=0.004):
        npd = 8
        g = (np.arange(npd) + 0.5) / npd
        q = np.stack(np.meshgrid(g, g, g, indexing="ij"), -1).reshape(-1, 3)
        # displacement psi = A cos(2 pi q_x) x_hat (normalized to D=1
        # at a=1; EdS: D(a) = a)
        psi = np.zeros_like(q)
        psi[:, 0] = amplitude * np.cos(2 * np.pi * q[:, 0])
        pos = np.mod(q + a_init * psi, 1.0)
        # p = a^2 dD/dt psi = a^2 (aH) psi / a ... EdS: p = a^1.5 psi
        mom = a_init**1.5 * psi
        mass = np.full(len(q), particle_mass(EINSTEIN_DE_SITTER, len(q)))
        return q, psi, pos, mom, mass

    def test_linear_growth_rate(self):
        a0, a1 = 0.02, 0.04
        q, psi, pos, mom, mass = self._setup(a0)
        cfg = _config(mesh=16, softening=1e-3, theta=0.3)
        sim = SerialSimulation(
            cfg, pos, mom, mass, stepper=CosmoStepper(EINSTEIN_DE_SITTER)
        )
        sim.run(a0, a1, n_steps=8)
        disp = sim.pos - q
        disp -= np.round(disp)
        expected = a1 * psi
        # the displacement doubled (D = a in EdS): compare projections
        got = (disp * psi).sum() / (psi * psi).sum()
        want = (expected * psi).sum() / (psi * psi).sum()
        assert got == pytest.approx(want, rel=0.05)

    def test_transverse_motion_stays_zero(self):
        a0 = 0.02
        q, psi, pos, mom, mass = self._setup(a0)
        cfg = _config(mesh=16, softening=1e-3, theta=0.3)
        sim = SerialSimulation(
            cfg, pos, mom, mass, stepper=CosmoStepper(EINSTEIN_DE_SITTER)
        )
        sim.run(a0, 0.04, n_steps=4)
        disp = sim.pos - q
        disp -= np.round(disp)
        long_amp = np.abs(disp[:, 0]).max()
        trans_amp = np.abs(disp[:, 1:]).max()
        assert trans_amp < 0.05 * long_amp
