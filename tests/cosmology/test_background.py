"""Tests of expansion history and growth factors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cosmology.expansion import Expansion
from repro.cosmology.growth import GrowthFactor
from repro.cosmology.params import EINSTEIN_DE_SITTER, WMAP7, CosmologyParams


class TestParams:
    def test_wmap7_flat(self):
        assert WMAP7.omega_k == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosmologyParams(omega_m=-1)
        with pytest.raises(ValueError):
            CosmologyParams(omega_b=0.5, omega_m=0.3)
        with pytest.raises(ValueError):
            CosmologyParams(h=0)

    def test_shape_parameter_close_to_omega_m_h(self):
        g = WMAP7.gamma_shape
        assert 0.6 * WMAP7.omega_m * WMAP7.h < g < WMAP7.omega_m * WMAP7.h


class TestExpansion:
    def test_e_of_one(self):
        assert Expansion(WMAP7).E(1.0) == pytest.approx(1.0)

    def test_eds_power_law(self):
        exp = Expansion(EINSTEIN_DE_SITTER)
        a = np.array([0.1, 0.5, 1.0])
        np.testing.assert_allclose(exp.E(a), a**-1.5, rtol=1e-12)

    def test_eds_kick_drift_analytic(self):
        """EdS: drift = int a^-1.5 da = 2(sqrt(a2) - sqrt(a1));
        kick = int a^-0.5 da = same form."""
        exp = Expansion(EINSTEIN_DE_SITTER)
        a1, a2 = 0.04, 0.16
        assert exp.drift_factor(a1, a2) == pytest.approx(
            2 * (1 / np.sqrt(a1) - 1 / np.sqrt(a2)), rel=1e-9
        )
        assert exp.kick_factor(a1, a2) == pytest.approx(
            2 * (np.sqrt(a2) - np.sqrt(a1)), rel=1e-9
        )

    def test_eds_age_of_universe(self):
        """EdS: t(a=1) = 2/3 in 1/H0 units."""
        exp = Expansion(EINSTEIN_DE_SITTER)
        assert exp.time_between(1e-8, 1.0) == pytest.approx(2.0 / 3.0, rel=1e-4)

    def test_z_a_conversions(self):
        assert Expansion.a_of_z(0.0) == 1.0
        assert Expansion.a_of_z(399.0) == pytest.approx(1.0 / 400.0)
        assert Expansion.z_of_a(0.25) == pytest.approx(3.0)

    def test_lambda_dominates_late(self):
        exp = Expansion(WMAP7)
        # at high a, E(a) -> sqrt(omega_l)
        assert exp.E(100.0) == pytest.approx(np.sqrt(WMAP7.omega_l), rel=1e-4)


class TestGrowth:
    def test_eds_growth_is_a(self):
        g = GrowthFactor(EINSTEIN_DE_SITTER)
        a = np.array([0.01, 0.1, 0.5, 1.0])
        np.testing.assert_allclose(g.D(a), a, rtol=1e-4)

    def test_eds_growth_rate_is_one(self):
        g = GrowthFactor(EINSTEIN_DE_SITTER)
        assert g.f(0.3) == pytest.approx(1.0, abs=1e-3)

    def test_normalized_at_one(self):
        g = GrowthFactor(WMAP7)
        assert float(g.D(1.0)) == pytest.approx(1.0, rel=1e-10)

    def test_monotone_increasing(self):
        g = GrowthFactor(WMAP7)
        a = np.linspace(0.01, 1.0, 20)
        d = g.D(a)
        assert np.all(np.diff(d) > 0)

    def test_lcdm_growth_suppressed_late(self):
        """Lambda suppresses growth: D(a)/a drops below 1 toward a=1
        when normalized in matter domination."""
        g = GrowthFactor(WMAP7)
        early_ratio = float(g.D(0.01)) / 0.01
        late_ratio = 1.0  # D(1)/1
        assert late_ratio < early_ratio

    def test_matter_era_growth_rate(self):
        """At early times LCDM behaves like EdS: f -> 1."""
        g = GrowthFactor(WMAP7)
        assert g.f(1.0 / 401.0) == pytest.approx(1.0, abs=5e-3)

    def test_wmap7_growth_rate_today(self):
        """f(1) ~ Omega_m^0.55 ~ 0.49 for WMAP7."""
        g = GrowthFactor(WMAP7)
        assert float(g.f(1.0)) == pytest.approx(WMAP7.omega_m**0.55, abs=0.02)

    def test_d_ratio(self):
        g = GrowthFactor(EINSTEIN_DE_SITTER)
        assert g.D_ratio(0.1, 0.2) == pytest.approx(2.0, rel=1e-4)
