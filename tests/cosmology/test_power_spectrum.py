"""Tests of the linear power spectrum machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cosmology.params import WMAP7
from repro.cosmology.power_spectrum import (
    PowerSpectrum,
    bbks_transfer,
    free_streaming_cutoff,
)


class TestBBKSTransfer:
    def test_unity_at_large_scales(self):
        assert bbks_transfer(np.array([0.0]), 0.2)[0] == 1.0
        assert bbks_transfer(np.array([1e-5]), 0.2)[0] == pytest.approx(1.0, abs=1e-3)

    def test_monotone_decreasing(self):
        k = np.geomspace(1e-4, 1e3, 200)
        t = bbks_transfer(k, 0.2)
        assert np.all(np.diff(t) < 0)

    def test_small_scale_asymptote(self):
        """T ~ ln(q)/q^2 at large k: steep suppression."""
        assert bbks_transfer(np.array([100.0]), 0.2)[0] < 1e-3


class TestFreeStreamingCutoff:
    def test_no_damping_large_scales(self):
        assert free_streaming_cutoff(np.array([1e-3]), 1.0)[0] == pytest.approx(
            1.0, abs=1e-4
        )

    def test_sharp_cutoff(self):
        t = free_streaming_cutoff(np.array([0.5, 1.0, 2.0, 4.0]), 1.0)
        assert t[0] > 0.5
        assert t[1] < 0.2
        assert t[2] < 1e-2
        assert np.all(t >= 0)

    def test_monotone_nonincreasing(self):
        k = np.geomspace(1e-2, 10, 300)
        t = free_streaming_cutoff(k, 1.0)
        assert np.all(np.diff(t) <= 1e-15)


class TestPowerSpectrum:
    @pytest.fixture(scope="class")
    def ps(self):
        return PowerSpectrum(WMAP7)

    def test_sigma8_normalization(self, ps):
        assert ps.sigma_r(8.0) == pytest.approx(WMAP7.sigma8, rel=1e-3)

    def test_growth_scaling(self, ps):
        k = np.array([0.1])
        p0 = ps(k, z=0.0)[0]
        p1 = ps(k, z=9.0)[0]
        d = ps.growth.D(0.1)
        assert p1 / p0 == pytest.approx(float(d) ** 2, rel=1e-6)

    def test_dimensionless_increasing_in_matter_regime(self, ps):
        """Delta^2(k) rises with k for n_s ~ 1 CDM (hierarchical)."""
        k = np.array([0.01, 0.1, 1.0, 10.0])
        d2 = ps.dimensionless(k)
        assert np.all(np.diff(d2) > 0)

    def test_cutoff_spectrum_suppressed(self):
        ps_cdm = PowerSpectrum(WMAP7)
        ps_cut = PowerSpectrum(WMAP7, k_fs=10.0)
        k = np.array([30.0])
        assert ps_cut(k)[0] < 1e-4 * ps_cdm(k)[0]
        k = np.array([0.1])
        assert ps_cut(k)[0] == pytest.approx(ps_cdm(k)[0], rel=1e-2)

    def test_sigma_smaller_on_larger_scales(self, ps):
        assert ps.sigma_r(16.0) < ps.sigma_r(8.0) < ps.sigma_r(1.0)

    def test_box_units_preserve_dimensionless_power(self, ps):
        """Delta^2 is invariant: k^3 P must match across unit systems."""
        box = 50.0  # Mpc/h
        p_box = ps.in_box_units(box)
        k_box = np.array([10.0])  # rad per box length
        k_phys = k_box / box
        d2_box = k_box**3 * p_box(k_box) / (2 * np.pi**2)
        d2_phys = ps.dimensionless(k_phys)
        np.testing.assert_allclose(d2_box, d2_phys, rtol=1e-12)

    def test_box_units_validation(self, ps):
        with pytest.raises(ValueError):
            ps.in_box_units(0.0)

    def test_custom_transfer(self):
        flat = PowerSpectrum(WMAP7, transfer=lambda k: np.ones_like(k))
        k = np.array([0.1, 1.0])
        p = flat(k)
        # pure power law: P ~ k^n_s
        assert p[1] / p[0] == pytest.approx(10**WMAP7.n_s, rel=1e-10)
