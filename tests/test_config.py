"""Tests of the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    DomainConfig,
    MachineConfig,
    PMConfig,
    RelayMeshConfig,
    SdcConfig,
    SimulationConfig,
    TreeConfig,
    TreePMConfig,
)


class TestTreeConfig:
    def test_defaults_valid(self):
        cfg = TreeConfig()
        assert 0 < cfg.opening_angle < 2

    @pytest.mark.parametrize("theta", [0.0, -0.5, 2.0, 5.0])
    def test_invalid_opening_angle(self, theta):
        with pytest.raises(ValueError):
            TreeConfig(opening_angle=theta)

    def test_invalid_leaf_and_group(self):
        with pytest.raises(ValueError):
            TreeConfig(leaf_size=0)
        with pytest.raises(ValueError):
            TreeConfig(group_size=0)


class TestPMConfig:
    def test_assignment_validation(self):
        with pytest.raises(ValueError, match="assignment"):
            PMConfig(assignment="cloud")

    def test_differencing_validation(self):
        with pytest.raises(ValueError, match="differencing"):
            PMConfig(differencing="six_point")

    def test_mesh_size_minimum(self):
        with pytest.raises(ValueError):
            PMConfig(mesh_size=2)


class TestTreePMConfig:
    def test_rcut_derived_from_mesh(self):
        cfg = TreePMConfig(pm=PMConfig(mesh_size=64), rcut_mesh_units=3.0)
        assert cfg.rcut == pytest.approx(3.0 / 64)

    def test_paper_rcut_value(self):
        """The paper: rcut = 3/4096 ~ 7.32e-4 of the box."""
        cfg = TreePMConfig(pm=PMConfig(mesh_size=4096), softening=1e-6)
        assert cfg.rcut == pytest.approx(7.32e-4, rel=1e-3)

    def test_softening_must_be_below_rcut(self):
        with pytest.raises(ValueError, match="softening"):
            TreePMConfig(pm=PMConfig(mesh_size=64), softening=0.1)

    def test_split_validation(self):
        with pytest.raises(ValueError, match="split"):
            TreePMConfig(split="spline")


class TestDomainConfig:
    def test_n_domains(self):
        assert DomainConfig(divisions=(2, 3, 4)).n_domains == 24

    def test_invalid_divisions(self):
        with pytest.raises(ValueError):
            DomainConfig(divisions=(0, 1, 1))

    def test_sample_rate_range(self):
        with pytest.raises(ValueError):
            DomainConfig(sample_rate=0.0)
        with pytest.raises(ValueError):
            DomainConfig(sample_rate=1.5)

    def test_smoothing_window(self):
        with pytest.raises(ValueError):
            DomainConfig(smoothing_window=0)


class TestRelayMeshConfig:
    def test_groups_minimum(self):
        assert RelayMeshConfig(n_groups=1).n_groups == 1
        with pytest.raises(ValueError):
            RelayMeshConfig(n_groups=0)


class TestMachineConfig:
    def test_k_computer_defaults(self):
        """Default machine is the full K computer of the paper."""
        m = MachineConfig()
        assert m.nodes == 82944
        assert m.peak_per_core == pytest.approx(16.0e9)
        assert m.peak_per_node == pytest.approx(128.0e9)
        assert m.peak_total == pytest.approx(10.6e15, rel=0.01)

    def test_torus_shape_must_match_nodes(self):
        with pytest.raises(ValueError, match="torus_shape"):
            MachineConfig(nodes=100, torus_shape=(4, 5, 6))

    def test_partial_system(self):
        m = MachineConfig(nodes=24576, torus_shape=(32, 24, 32))
        assert m.peak_total == pytest.approx(24576 * 128.0e9)


class TestSimulationConfig:
    def test_defaults(self):
        cfg = SimulationConfig()
        assert cfg.pp_subcycles == 2  # the paper's step structure

    def test_with_replacement(self):
        cfg = SimulationConfig().with_(n_particles=100)
        assert cfg.n_particles == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_particles=0)
        with pytest.raises(ValueError):
            SimulationConfig(pp_subcycles=0)

    def test_dict_roundtrip(self):
        import json

        cfg = SimulationConfig(
            treepm=TreePMConfig(
                tree=TreeConfig(opening_angle=0.3, group_size=128),
                pm=PMConfig(mesh_size=32, assignment="cic"),
                rcut_mesh_units=4.0,
                softening=1e-3,
                split="gaussian",
            ),
            domain=DomainConfig(divisions=(2, 3, 1), sample_rate=0.2),
            relay=RelayMeshConfig(n_groups=3),
            pp_subcycles=4,
            seed=99,
        )
        # via JSON to prove serializability
        data = json.loads(json.dumps(cfg.to_dict()))
        back = SimulationConfig.from_dict(data)
        assert back == cfg

    def test_from_dict_validates(self):
        bad = SimulationConfig().to_dict()
        bad["treepm"]["pm"]["mesh_size"] = 2
        with pytest.raises(ValueError):
            SimulationConfig.from_dict(bad)


class TestSdcConfig:
    def test_defaults_disabled(self):
        sdc = SdcConfig()
        assert sdc.policy == "off" and not sdc.enabled
        assert sdc.audit_every == 1
        assert sdc.keep_last == 0

    @pytest.mark.parametrize("policy", ["warn", "heal", "abort"])
    def test_enabled_policies(self, policy):
        assert SdcConfig(policy=policy).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            SdcConfig(policy="retry")
        with pytest.raises(ValueError):
            SdcConfig(audit_every=0)
        with pytest.raises(ValueError):
            SdcConfig(spot_check_groups=-1)
        with pytest.raises(ValueError):
            SdcConfig(keep_last=-1)

    def test_roundtrip_through_dict(self):
        import json

        cfg = SimulationConfig(
            sdc=SdcConfig(policy="heal", audit_every=2, keep_last=3)
        )
        back = SimulationConfig.from_dict(
            json.loads(json.dumps(cfg.to_dict()))
        )
        assert back.sdc == cfg.sdc

    def test_config_hash_ignores_sdc(self):
        # audit policy is an operational knob, not physics: two runs
        # that differ only in SDC settings are the same simulation
        # (checkpoints must remain mutually restorable)
        a = SimulationConfig()
        b = SimulationConfig(sdc=SdcConfig(policy="heal", audit_every=5))
        assert a.config_hash() == b.config_hash()
