"""Tests of octree construction and node moments."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.octree import Octree


class TestBuild:
    def test_root_covers_all(self, uniform_particles):
        pos, mass = uniform_particles
        tree = Octree(pos, mass)
        assert tree.node_lo[0] == 0
        assert tree.node_hi[0] == len(pos)

    def test_structure_valid(self, clustered_particles):
        pos, mass = clustered_particles
        tree = Octree(pos, mass, leaf_size=4)
        tree.validate()

    def test_leaf_size_respected(self, uniform_particles):
        pos, mass = uniform_particles
        tree = Octree(pos, mass, leaf_size=4)
        leaves = tree.leaves()
        counts = tree.node_hi[leaves] - tree.node_lo[leaves]
        assert np.all(counts <= 4)

    def test_single_particle(self):
        tree = Octree(np.array([[0.3, 0.3, 0.3]]), np.array([2.0]))
        assert tree.n_nodes == 1
        assert tree.node_is_leaf[0]
        assert tree.node_mass[0] == 2.0

    def test_coincident_particles_terminate(self):
        """Particles at identical positions cannot be separated; the
        MAX_DEPTH cap must terminate the recursion."""
        pos = np.tile(np.array([[0.5, 0.5, 0.5]]), (20, 1))
        tree = Octree(pos, np.ones(20), leaf_size=2)
        assert tree.n_nodes >= 1
        assert tree.node_mass[0] == 20.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Octree(np.zeros((0, 3)), np.zeros(0))

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            Octree(np.zeros((2, 2)), np.ones(2))
        with pytest.raises(ValueError):
            Octree(np.zeros((2, 3)), np.ones(3))
        with pytest.raises(ValueError):
            Octree(np.zeros((2, 3)), np.ones(2), leaf_size=0)

    def test_children_geometry(self, uniform_particles):
        pos, mass = uniform_particles
        tree = Octree(pos, mass, leaf_size=4)
        for i in range(tree.n_nodes):
            for c in tree.node_children[i]:
                if c < 0:
                    continue
                assert tree.node_half[c] == pytest.approx(tree.node_half[i] / 2)
                off = tree.node_center[c] - tree.node_center[i]
                np.testing.assert_allclose(
                    np.abs(off), tree.node_half[i] / 2, rtol=1e-12
                )

    def test_particles_inside_their_nodes(self, clustered_particles):
        pos, mass = clustered_particles
        tree = Octree(pos, mass, leaf_size=4)
        for i in range(tree.n_nodes):
            lo, hi = tree.node_lo[i], tree.node_hi[i]
            p = tree.pos_sorted[lo:hi]
            c = tree.node_center[i]
            h = tree.node_half[i]
            assert np.all(np.abs(p - c) <= h * (1 + 1e-9))


class TestMoments:
    def test_root_mass_and_com(self, clustered_particles):
        pos, mass = clustered_particles
        tree = Octree(pos, mass)
        assert tree.node_mass[0] == pytest.approx(mass.sum())
        com = (mass[:, None] * pos).sum(axis=0) / mass.sum()
        np.testing.assert_allclose(tree.node_com[0], com, rtol=1e-12)

    def test_children_moments_sum_to_parent(self, uniform_particles):
        pos, mass = uniform_particles
        tree = Octree(pos, mass, leaf_size=2)
        for i in range(tree.n_nodes):
            kids = tree.node_children[i][tree.node_children[i] >= 0]
            if len(kids) == 0:
                continue
            assert tree.node_mass[kids].sum() == pytest.approx(
                tree.node_mass[i], rel=1e-12
            )
            weighted = (
                tree.node_mass[kids, None] * tree.node_com[kids]
            ).sum(axis=0) / tree.node_mass[i]
            np.testing.assert_allclose(weighted, tree.node_com[i], rtol=1e-10)

    def test_quadrupole_traceless(self, clustered_particles):
        pos, mass = clustered_particles
        tree = Octree(pos, mass, compute_quadrupole=True)
        tr = np.trace(tree.node_quad, axis1=1, axis2=2)
        np.testing.assert_allclose(tr, 0.0, atol=1e-10)

    def test_quadrupole_symmetric(self, clustered_particles):
        pos, mass = clustered_particles
        tree = Octree(pos, mass, compute_quadrupole=True)
        np.testing.assert_allclose(
            tree.node_quad, np.swapaxes(tree.node_quad, 1, 2), atol=1e-12
        )

    def test_quadrupole_reference(self):
        """Root quadrupole against the textbook definition."""
        rng = np.random.default_rng(2)
        pos = rng.random((10, 3))
        mass = rng.random(10)
        tree = Octree(pos, mass, compute_quadrupole=True)
        com = (mass[:, None] * pos).sum(axis=0) / mass.sum()
        d = pos - com
        q = np.zeros((3, 3))
        for k in range(10):
            q += mass[k] * (3 * np.outer(d[k], d[k]) - (d[k] @ d[k]) * np.eye(3))
        np.testing.assert_allclose(tree.node_quad[0], q, rtol=1e-10, atol=1e-12)

    def test_quadrupole_zero_for_single_particle(self):
        tree = Octree(
            np.array([[0.4, 0.4, 0.4]]), np.array([1.0]), compute_quadrupole=True
        )
        np.testing.assert_allclose(tree.node_quad[0], 0.0, atol=1e-15)


class TestGroups:
    def test_groups_partition_particles(self, clustered_particles):
        pos, mass = clustered_particles
        tree = Octree(pos, mass, leaf_size=4)
        groups = tree.group_nodes(16)
        ranges = sorted((tree.node_lo[g], tree.node_hi[g]) for g in groups)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == len(pos)
        for (l1, h1), (l2, h2) in zip(ranges[:-1], ranges[1:]):
            assert h1 == l2  # contiguous, non-overlapping

    def test_group_size_bound(self, clustered_particles):
        pos, mass = clustered_particles
        tree = Octree(pos, mass, leaf_size=4)
        for g in tree.group_nodes(16):
            assert tree.node_hi[g] - tree.node_lo[g] <= 16

    def test_group_size_one_gives_leaves(self, uniform_particles):
        pos, mass = uniform_particles
        tree = Octree(pos, mass, leaf_size=1)
        groups = tree.group_nodes(1)
        assert len(groups) == len(pos)

    def test_invalid_group_size(self, uniform_particles):
        pos, mass = uniform_particles
        tree = Octree(pos, mass)
        with pytest.raises(ValueError):
            tree.group_nodes(0)

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=10)
    def test_property_partition(self, gsz):
        rng = np.random.default_rng(gsz)
        pos = rng.random((64, 3))
        tree = Octree(pos, np.ones(64), leaf_size=4)
        groups = tree.group_nodes(gsz)
        total = sum(int(tree.node_hi[g] - tree.node_lo[g]) for g in groups)
        assert total == 64
