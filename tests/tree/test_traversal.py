"""Tests of the Barnes-modified traversal and tree force accuracy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.forces.direct import direct_forces_cutoff, direct_forces_open
from repro.tree.traversal import TreeSolver, tree_forces


def _rel_err(acc, ref):
    err = np.linalg.norm(acc - ref, axis=1)
    scale = np.linalg.norm(ref, axis=1)
    return err / np.maximum(scale, 1e-30)


class TestPureTree:
    def test_matches_direct_open(self, clustered_particles):
        pos, mass = clustered_particles
        acc, stats = tree_forces(pos, mass, theta=0.4, eps=1e-3)
        ref = direct_forces_open(pos, mass, eps=1e-3)
        assert np.percentile(_rel_err(acc, ref), 95) < 0.01
        assert stats.n_groups > 0

    def test_theta_zero_limit_is_exact(self, uniform_particles):
        """With a tiny theta every node is opened: exact direct sum."""
        pos, mass = uniform_particles
        acc, stats = tree_forces(pos, mass, theta=1e-6, eps=1e-3)
        ref = direct_forces_open(pos, mass, eps=1e-3)
        np.testing.assert_allclose(acc, ref, rtol=1e-10, atol=1e-12)

    def test_error_grows_with_theta(self, clustered_particles):
        pos, mass = clustered_particles
        ref = direct_forces_open(pos, mass, eps=1e-3)
        errs = []
        for theta in (0.2, 0.5, 1.0):
            acc, _ = tree_forces(pos, mass, theta=theta, eps=1e-3)
            errs.append(np.sqrt((_rel_err(acc, ref) ** 2).mean()))
        assert errs[0] <= errs[1] <= errs[2]
        assert errs[0] < 1e-3

    def test_quadrupole_improves_accuracy(self, clustered_particles):
        pos, mass = clustered_particles
        ref = direct_forces_open(pos, mass, eps=1e-3)
        acc_m, _ = tree_forces(pos, mass, theta=0.7, eps=1e-3)
        acc_q, _ = tree_forces(
            pos, mass, theta=0.7, eps=1e-3, use_quadrupole=True
        )
        rms_m = np.sqrt((_rel_err(acc_m, ref) ** 2).mean())
        rms_q = np.sqrt((_rel_err(acc_q, ref) ** 2).mean())
        assert rms_q < rms_m

    def test_interaction_count_well_below_n_squared(self):
        rng = np.random.default_rng(9)
        pos = rng.random((1000, 3))
        mass = np.ones(1000) / 1000
        _, stats = tree_forces(pos, mass, theta=0.6, eps=1e-4, group_size=32)
        assert stats.interactions < 1000**2 / 2

    def test_group_size_tradeoff(self):
        """Larger groups -> fewer traversals but longer lists <Nj>:
        the trade-off of Barnes' modified algorithm (paper II)."""
        rng = np.random.default_rng(10)
        pos = rng.random((500, 3))
        mass = np.ones(500)
        _, s_small = tree_forces(pos, mass, theta=0.5, group_size=8)
        _, s_large = tree_forces(pos, mass, theta=0.5, group_size=128)
        assert s_large.n_groups < s_small.n_groups
        assert s_large.mean_list_length > s_small.mean_list_length


class TestTreeWithCutoff:
    def test_matches_direct_cutoff_periodic(self, clustered_particles):
        pos, mass = clustered_particles
        split = S2ForceSplit(rcut=0.15)
        acc, stats = tree_forces(
            pos, mass, theta=0.4, eps=1e-4, split=split, periodic=True
        )
        ref = direct_forces_cutoff(pos, mass, split, box=1.0, eps=1e-4)
        nonzero = np.linalg.norm(ref, axis=1) > 1e-8
        assert np.percentile(_rel_err(acc[nonzero], ref[nonzero]), 95) < 0.02

    def test_periodic_wrap_forces(self):
        """Particles across the box wall interact through the boundary."""
        split = S2ForceSplit(rcut=0.2)
        pos = np.array([[0.02, 0.5, 0.5], [0.98, 0.5, 0.5], [0.5, 0.5, 0.5]])
        mass = np.ones(3)
        acc, _ = tree_forces(
            pos, mass, theta=0.3, eps=1e-5, split=split, periodic=True
        )
        # pair (0, 1) separated by 0.04 through the wall
        assert acc[0, 0] < -1e2
        assert acc[1, 0] > 1e2

    def test_cutoff_culls_interactions(self):
        rng = np.random.default_rng(4)
        pos = rng.random((800, 3))
        mass = np.ones(800)
        split = S2ForceSplit(rcut=0.08)
        _, s_cut = tree_forces(pos, mass, theta=0.5, split=split, periodic=True)
        _, s_full = tree_forces(pos, mass, theta=0.5, periodic=False)
        assert s_cut.mean_list_length < s_full.mean_list_length

    def test_rcut_over_half_box_rejected(self):
        with pytest.raises(ValueError, match="cutoff"):
            TreeSolver(split=S2ForceSplit(rcut=0.6), periodic=True)

    def test_exact_vs_kernel_traversal_invariance(self, clustered_particles):
        """The result must not depend on group size (same physics)."""
        pos, mass = clustered_particles
        split = S2ForceSplit(rcut=0.12)
        acc1, _ = tree_forces(
            pos, mass, theta=1e-6, split=split, periodic=True, group_size=8
        )
        acc2, _ = tree_forces(
            pos, mass, theta=1e-6, split=split, periodic=True, group_size=64
        )
        np.testing.assert_allclose(acc1, acc2, rtol=1e-9, atol=1e-12)


class TestStats:
    def test_mean_group_size_close_to_target(self):
        rng = np.random.default_rng(5)
        pos = rng.random((2000, 3))
        mass = np.ones(2000)
        _, stats = tree_forces(pos, mass, theta=0.5, group_size=64)
        # groups are tree cells with <= 64 particles; mean is below but
        # within a factor of a few of the target
        assert 8 < stats.mean_group_size <= 64

    def test_momentum_not_wildly_violated(self, clustered_particles):
        """Tree forces are not exactly antisymmetric, but the total
        momentum change must be small compared to the force scale."""
        pos, mass = clustered_particles
        acc, _ = tree_forces(pos, mass, theta=0.5, eps=1e-3)
        ptot = np.linalg.norm((mass[:, None] * acc).sum(axis=0))
        scale = np.abs(mass[:, None] * acc).sum()
        assert ptot < 0.01 * scale
