"""Tests of the interaction-plan engine and its satellites.

The plan path (traverse all groups, then execute one batched sweep) must
be bitwise-identical to the legacy interleaved per-group path in float64
mode — not merely close.  These tests pin that contract across every
kernel configuration, plus the masked-target semantics the distributed
driver relies on, the no-wrap certificate, and the single-precision
mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.forces.direct import direct_forces_cutoff
from repro.pp.plan import InteractionPlan, PlanExecutor, multi_arange
from repro.tree.traversal import TreeSolver


@pytest.fixture
def medium_particles():
    """A clustered box large enough to produce many groups."""
    rng = np.random.default_rng(42)
    blob = 0.5 + 0.05 * rng.standard_normal((1500, 3))
    bg = rng.random((500, 3))
    pos = np.mod(np.vstack([blob, bg]), 1.0)
    mass = rng.random(len(pos)) / len(pos)
    return pos, mass


def _both(pos, mass, targets_mask=None, **kw):
    """Force the same configuration through the plan and legacy paths."""
    a_plan, s_plan = TreeSolver(use_plan=True, **kw).forces(
        pos, mass, targets_mask=targets_mask
    )
    a_leg, s_leg = TreeSolver(use_plan=False, **kw).forces(
        pos, mass, targets_mask=targets_mask
    )
    return a_plan, s_plan, a_leg, s_leg


SPLIT = S2ForceSplit(3.0 / 32)

CONFIGS = [
    pytest.param(dict(periodic=True, split=SPLIT, eps=1e-3), id="periodic-split"),
    pytest.param(dict(periodic=True, eps=1e-3), id="periodic-pure-tree"),
    pytest.param(dict(periodic=False, eps=1e-3), id="open"),
    pytest.param(
        dict(periodic=True, split=SPLIT, eps=1e-3, use_fast_rsqrt=True),
        id="fast-rsqrt",
    ),
    pytest.param(dict(periodic=True, split=SPLIT, eps=0.0), id="eps-zero"),
    pytest.param(
        dict(periodic=False, eps=1e-3, use_quadrupole=True), id="quadrupole"
    ),
    pytest.param(
        dict(periodic=True, split=SPLIT, eps=1e-3, group_size=17, leaf_size=3),
        id="odd-granularity",
    ),
]


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("kw", CONFIGS)
    def test_plan_matches_legacy_bitwise(self, medium_particles, kw):
        pos, mass = medium_particles
        a_plan, s_plan, a_leg, s_leg = _both(pos, mass, **kw)
        assert np.array_equal(a_plan, a_leg)
        # statistics must agree too: the plan is the same traversal
        assert s_plan.n_groups == s_leg.n_groups
        assert s_plan.interactions == s_leg.interactions
        assert s_plan.mean_group_size == s_leg.mean_group_size
        assert s_plan.mean_list_length == s_leg.mean_list_length

    def test_ewald_configuration(self, uniform_particles):
        pos, mass = uniform_particles
        a_plan, _, a_leg, _ = _both(
            pos, mass, periodic=True, eps=1e-3, ewald_correction=True
        )
        assert np.array_equal(a_plan, a_leg)

    def test_tiny_pair_budget_still_bitwise(self, medium_particles):
        """Many small batches must give the same bits as few large ones."""
        pos, mass = medium_particles
        kw = dict(periodic=True, split=SPLIT, eps=1e-3, plan_native=False)
        a_small = TreeSolver(use_plan=True, plan_pair_budget=4096, **kw).forces(
            pos, mass
        )[0]
        a_large = TreeSolver(use_plan=True, plan_pair_budget=1 << 22, **kw).forces(
            pos, mass
        )[0]
        a_leg = TreeSolver(use_plan=False, **kw).forces(pos, mass)[0]
        assert np.array_equal(a_small, a_leg)
        assert np.array_equal(a_large, a_leg)

    def test_accuracy_against_direct_cutoff(self, medium_particles):
        """The plan path stays an accurate short-range solver."""
        pos, mass = medium_particles
        acc, _ = TreeSolver(
            use_plan=True, periodic=True, split=SPLIT, eps=1e-3, theta=0.3
        ).forces(pos, mass)
        ref = direct_forces_cutoff(pos, mass, SPLIT, eps=1e-3)
        err = np.linalg.norm(acc - ref, axis=1)
        scale = np.maximum(np.linalg.norm(ref, axis=1), 1e-30)
        assert np.percentile(err / scale, 95) < 0.02


class TestTargetsMask:
    """The distributed driver's ghost-as-source-only semantics."""

    def test_masked_matches_legacy_bitwise(self, medium_particles):
        pos, mass = medium_particles
        rng = np.random.default_rng(7)
        mask = rng.random(len(pos)) < 0.35
        a_plan, _, a_leg, _ = _both(
            pos, mass, targets_mask=mask, periodic=True, split=SPLIT, eps=1e-3
        )
        assert np.array_equal(a_plan, a_leg)

    def test_unmasked_rows_exactly_zero(self, medium_particles):
        pos, mass = medium_particles
        rng = np.random.default_rng(8)
        mask = rng.random(len(pos)) < 0.35
        acc, _ = TreeSolver(
            use_plan=True, periodic=True, split=SPLIT, eps=1e-3
        ).forces(pos, mass, targets_mask=mask)
        assert not acc[~mask].any()

    def test_source_only_groups_are_skipped(self):
        """A spatially separated ghost slab is never traversed for."""
        rng = np.random.default_rng(9)
        local = rng.random((600, 3)) * [0.4, 1.0, 1.0]
        ghosts = rng.random((600, 3)) * [0.4, 1.0, 1.0] + [0.55, 0.0, 0.0]
        pos = np.vstack([local, ghosts])
        mass = np.full(len(pos), 1.0 / len(pos))
        mask = np.zeros(len(pos), dtype=bool)
        mask[: len(local)] = True
        solver = TreeSolver(periodic=False, eps=1e-3)
        tree = solver.build(pos, mass)
        mask_sorted = mask[tree.perm]
        full = solver.build_plan(tree)
        masked = solver.build_plan(tree, mask_sorted=mask_sorted)
        assert masked.n_groups < full.n_groups
        # every emitted group holds at least one masked target
        tgt_rows = multi_arange(masked.group_lo, masked.group_hi)
        gid = np.repeat(np.arange(masked.n_groups), masked.target_counts)
        has_target = np.zeros(masked.n_groups, dtype=bool)
        np.logical_or.at(has_target, gid, mask_sorted[tgt_rows])
        assert has_target.all()

    def test_mask_forces_match_unmasked_on_masked_rows(self, medium_particles):
        """Masking only zeroes rows; it never changes masked-row forces."""
        pos, mass = medium_particles
        rng = np.random.default_rng(10)
        mask = rng.random(len(pos)) < 0.5
        kw = dict(use_plan=True, periodic=True, split=SPLIT, eps=1e-3)
        a_masked, _ = TreeSolver(**kw).forces(pos, mass, targets_mask=mask)
        a_full, _ = TreeSolver(**kw).forces(pos, mass)
        assert np.array_equal(a_masked[mask], a_full[mask])


class TestPlanStructure:
    def test_csr_invariants(self, medium_particles):
        pos, mass = medium_particles
        solver = TreeSolver(periodic=True, split=SPLIT, eps=1e-3)
        tree = solver.build(pos, mass)
        plan = solver.build_plan(tree)
        G = plan.n_groups
        assert G > 1
        assert len(plan.part_ptr) == G + 1 and len(plan.node_ptr) == G + 1
        assert plan.part_ptr[-1] == len(plan.part_idx)
        assert plan.node_ptr[-1] == len(plan.node_idx)
        assert (np.diff(plan.part_ptr) >= 0).all()
        assert (np.diff(plan.node_ptr) >= 0).all()
        # groups tile the sorted particle array exactly once
        assert plan.group_lo[0] == 0 and plan.group_hi[-1] == len(pos)
        assert np.array_equal(plan.group_hi[:-1], plan.group_lo[1:])
        assert plan.n_pairs == int(
            np.dot(plan.target_counts, plan.list_lengths)
        )
        assert plan.part_shift.shape == (len(plan.part_idx), 3)
        assert plan.node_shift.shape == (len(plan.node_idx), 3)
        # shifts are integer multiples of the box
        assert np.array_equal(plan.part_shift, np.round(plan.part_shift))

    def test_no_wrap_certificate_is_sound(self, medium_particles):
        """Where the certificate holds, the wrap must truly be a no-op."""
        pos, mass = medium_particles
        solver = TreeSolver(periodic=True, split=SPLIT, eps=1e-3)
        tree = solver.build(pos, mass)
        plan = solver.build_plan(tree)
        assert plan.no_wrap is not None and plan.no_wrap.any()
        box = solver.box
        for i in np.flatnonzero(plan.no_wrap):
            tgt = tree.pos_sorted[plan.group_lo[i]:plan.group_hi[i]]
            srcs = [
                tree.pos_sorted[
                    plan.part_idx[plan.part_ptr[i]:plan.part_ptr[i + 1]]
                ],
                tree.node_com[
                    plan.node_idx[plan.node_ptr[i]:plan.node_ptr[i + 1]]
                ],
            ]
            for src in srcs:
                if not len(src):
                    continue
                dx = src[None, :, :] - tgt[:, None, :]
                assert np.all(np.round(dx / box) == 0.0)

    def test_interior_blob_mostly_no_wrap(self):
        """A central cluster needs no wraps; the certificate finds that."""
        rng = np.random.default_rng(11)
        pos = np.clip(0.5 + 0.03 * rng.standard_normal((2000, 3)), 0.01, 0.99)
        mass = np.full(len(pos), 1.0 / len(pos))
        solver = TreeSolver(periodic=True, split=SPLIT, eps=1e-3)
        tree = solver.build(pos, mass)
        plan = solver.build_plan(tree)
        assert plan.no_wrap.all()


class TestFloat32Mode:
    def test_close_to_double(self, medium_particles):
        pos, mass = medium_particles
        kw = dict(periodic=True, split=SPLIT, eps=1e-3)
        a32, _ = TreeSolver(use_plan=True, plan_float32=True, **kw).forces(
            pos, mass
        )
        a64, _ = TreeSolver(use_plan=True, **kw).forces(pos, mass)
        err = np.linalg.norm(a32 - a64, axis=1)
        scale = np.linalg.norm(a64, axis=1)
        med = np.median(err / np.maximum(scale, 1e-30))
        assert 0 < med < 1e-5  # single-precision level, clearly not f64

    def test_open_boundary_float32(self, medium_particles):
        pos, mass = medium_particles
        a32, _ = TreeSolver(
            use_plan=True, plan_float32=True, periodic=False, eps=1e-3
        ).forces(pos, mass)
        a64, _ = TreeSolver(use_plan=True, periodic=False, eps=1e-3).forces(
            pos, mass
        )
        # rtol covers the large components, atol the strongly cancelled
        # near-zero ones (accelerations here are O(10)-O(100))
        np.testing.assert_allclose(a32, a64, rtol=1e-3, atol=1e-3)


class TestExecutor:
    def test_scratch_is_reused_across_calls(self, medium_particles):
        pos, mass = medium_particles
        solver = TreeSolver(use_plan=True, periodic=True, split=SPLIT, eps=1e-3)
        solver.forces(pos, mass)
        after_first = solver._executor.scratch_bytes()
        assert after_first > 0
        solver.forces(pos, mass)
        assert solver._executor.scratch_bytes() == after_first

    def test_pair_budget_bounds_batches(self, medium_particles):
        pos, mass = medium_particles
        small = TreeSolver(
            use_plan=True, periodic=True, split=SPLIT, eps=1e-3,
            plan_pair_budget=4096, plan_native=False,
        )
        large = TreeSolver(
            use_plan=True, periodic=True, split=SPLIT, eps=1e-3,
            plan_pair_budget=1 << 22, plan_native=False,
        )
        small.forces(pos, mass)
        large.forces(pos, mass)
        assert small._executor.batches_run > large._executor.batches_run

    def test_rejects_bad_dtype(self):
        with pytest.raises(ValueError):
            PlanExecutor(dtype=np.int32)
        with pytest.raises(ValueError):
            PlanExecutor(pair_budget=0)

    def test_empty_plan_is_noop(self):
        plan = InteractionPlan(
            group_nodes=np.empty(0, dtype=np.int64),
            group_lo=np.empty(0, dtype=np.int64),
            group_hi=np.empty(0, dtype=np.int64),
            part_ptr=np.zeros(1, dtype=np.int64),
            part_idx=np.empty(0, dtype=np.int64),
            node_ptr=np.zeros(1, dtype=np.int64),
            node_idx=np.empty(0, dtype=np.int64),
        )
        assert plan.n_pairs == 0
        from repro.pp.kernel import PPKernel

        out = PlanExecutor().execute(
            plan, PPKernel(), np.zeros((4, 3)), np.zeros(4),
            np.empty((0, 3)), np.empty(0),
        )
        assert not out.any()


class TestQuadrupoleRegression:
    def test_split_factor_uses_unsoftened_radius(self):
        """Regression for the softened-radius bug: the split's
        short-range factor must be evaluated at the unsoftened
        separation ``sqrt(r2)`` — exactly like the monopole kernel —
        not at the softened radius ``sqrt(r2 + eps^2)``.  With eps a
        sizeable fraction of rcut the two factors differ at the
        percent level, so the analytic reference below cleanly rejects
        the buggy form."""
        split = S2ForceSplit(0.12)
        eps = 0.03
        solver = TreeSolver(
            periodic=False, split=split, eps=eps, use_quadrupole=True
        )
        rng = np.random.default_rng(21)
        targets = rng.random((5, 3)) * 0.02
        node_pos = np.array([[0.06, 0.01, -0.02], [0.0, 0.09, 0.03]])
        q = rng.standard_normal((2, 3, 3)) * 1e-4
        q = q + np.transpose(q, (0, 2, 1))
        for k in range(2):  # traceless, like the tree's moments
            q[k] -= np.eye(3) * np.trace(q[k]) / 3.0
        got = solver._quadrupole_acc(targets, node_pos, q)

        r = targets[:, None, :] - node_pos[None, :, :]
        r2 = np.einsum("tsk,tsk->ts", r, r)
        r2s = r2 + eps**2
        qr = np.einsum("sab,tsb->tsa", q, r)
        rqr = np.einsum("tsa,tsa->ts", qr, r)
        term = qr * (r2s**-2.5)[..., None] - 2.5 * (
            rqr * r2s**-2.5 / r2s
        )[..., None] * r
        # the cutoff factor at the UNSOFTENED separation
        g_good = split.short_range_factor(np.sqrt(r2))
        g_bad = split.short_range_factor(np.sqrt(r2s))
        expect = np.sum(term * g_good[..., None], axis=1)
        buggy = np.sum(term * g_bad[..., None], axis=1)
        np.testing.assert_allclose(got, expect, rtol=1e-12, atol=0.0)
        # and the two forms genuinely differ here, so this test would
        # have failed before the fix
        assert np.max(np.abs(buggy - expect)) > 1e-9 * np.max(np.abs(expect))

    def test_quadrupole_tree_beats_monopole_with_softening(self):
        """End-to-end: with eps > 0 and a split attached the quadrupole
        correction still improves on the monopole tree."""
        rng = np.random.default_rng(23)
        pos = np.mod(0.5 + 0.08 * rng.standard_normal((1200, 3)), 1.0)
        mass = rng.random(1200) / 1200
        split = S2ForceSplit(0.12)
        eps = 0.005
        ref = direct_forces_cutoff(pos, mass, split, eps=eps)
        kw = dict(periodic=True, split=split, eps=eps, theta=0.8)
        acc_q, _ = TreeSolver(use_quadrupole=True, **kw).forces(pos, mass)
        acc_m, _ = TreeSolver(use_quadrupole=False, **kw).forces(pos, mass)
        scale = np.maximum(np.linalg.norm(ref, axis=1), 1e-30)
        rms_q = np.sqrt(
            ((np.linalg.norm(acc_q - ref, axis=1) / scale) ** 2).mean()
        )
        rms_m = np.sqrt(
            ((np.linalg.norm(acc_m - ref, axis=1) / scale) ** 2).mean()
        )
        assert rms_q < rms_m

    def test_quadrupole_periodic_plan_matches_legacy(self):
        rng = np.random.default_rng(22)
        pos = rng.random((800, 3))
        mass = np.full(800, 1.0 / 800)
        a_plan, _, a_leg, _ = _both(
            pos, mass, periodic=True, split=SPLIT, eps=1e-3,
            use_quadrupole=True,
        )
        assert np.array_equal(a_plan, a_leg)


class TestMultiArange:
    def test_matches_python_loop(self):
        rng = np.random.default_rng(3)
        lo = rng.integers(0, 50, size=20)
        hi = lo + rng.integers(0, 10, size=20)
        expect = np.concatenate(
            [np.arange(a, b) for a, b in zip(lo, hi)]
        ) if (hi - lo).sum() else np.empty(0, dtype=np.int64)
        assert np.array_equal(multi_arange(lo, hi), expect)

    def test_empty(self):
        assert multi_arange(np.empty(0), np.empty(0)).size == 0


class TestNativeKernel:
    """The compiled plan-sweep kernel must be invisible except for speed."""

    @pytest.mark.parametrize(
        "kw",
        [
            pytest.param(dict(periodic=True, split=SPLIT, eps=1e-3), id="split"),
            pytest.param(dict(periodic=True, split=SPLIT, eps=0.0), id="eps0"),
            pytest.param(dict(periodic=True, eps=1e-3), id="pure-tree"),
            pytest.param(dict(periodic=False, eps=1e-3), id="open"),
        ],
    )
    def test_native_matches_numpy_bitwise(self, medium_particles, kw):
        from repro.pp import native

        if not native.available():
            pytest.skip("no C compiler available")
        pos, mass = medium_particles
        a_nat, _ = TreeSolver(use_plan=True, plan_native=True, **kw).forces(
            pos, mass
        )
        a_np, _ = TreeSolver(use_plan=True, plan_native=False, **kw).forces(
            pos, mass
        )
        assert np.array_equal(a_nat, a_np)

    def test_native_actually_runs_when_available(self, medium_particles):
        from repro.pp import native

        if not native.available():
            pytest.skip("no C compiler available")
        pos, mass = medium_particles
        s = TreeSolver(use_plan=True, periodic=True, split=SPLIT, eps=1e-3)
        s.forces(pos, mass)
        assert s._executor.native_runs > 0
        assert s._executor.batches_run == 0

    def test_unsupported_configs_fall_back(self, medium_particles):
        pos, mass = medium_particles
        # fast rsqrt is a numpy-only path
        s = TreeSolver(
            use_plan=True, periodic=True, split=SPLIT, eps=1e-3,
            use_fast_rsqrt=True,
        )
        s.forces(pos, mass)
        assert s._executor.native_runs == 0
        assert s._executor.batches_run > 0
        # float32 mode is a numpy-only path
        s32 = TreeSolver(
            use_plan=True, periodic=True, split=SPLIT, eps=1e-3,
            plan_float32=True,
        )
        s32.forces(pos, mass)
        assert s32._executor.native_runs == 0

    def test_failed_verification_disables_native(
        self, medium_particles, monkeypatch
    ):
        """If the cross-check ever fails, the executor must silently use
        the numpy pipeline (and still produce legacy-identical bits)."""
        import repro.pp.plan as plan_mod

        monkeypatch.setattr(plan_mod, "_NATIVE_VERIFIED", False)
        pos, mass = medium_particles
        s = TreeSolver(use_plan=True, periodic=True, split=SPLIT, eps=1e-3)
        a, _ = s.forces(pos, mass)
        assert s._executor.native_runs == 0
        a_leg, _ = TreeSolver(
            use_plan=False, periodic=True, split=SPLIT, eps=1e-3
        ).forces(pos, mass)
        assert np.array_equal(a, a_leg)


class TestSlicePlan:
    """``slice_plan`` is the ABFT spot-check's sampling primitive: a
    sub-plan over selected groups must reproduce, bitwise, exactly the
    target rows the full sweep produced for those groups."""

    def _sweep(self, medium_particles, **kw):
        from repro.pp.kernel import PPKernel

        pos, mass = medium_particles
        solver = TreeSolver(periodic=True, split=SPLIT, eps=1e-3, **kw)
        solver.retain_last_sweep = True
        solver.forces(pos, mass)
        sweep = solver.last_sweep
        kc = sweep["kernel_config"]
        kernel = PPKernel(
            split=kc["split"], eps=kc["eps"], G=kc["G"],
            use_fast_rsqrt=kc["use_fast_rsqrt"], box=kc["box"],
            ewald_table=kc["ewald_table"],
        )
        return solver, sweep, kernel

    @pytest.mark.parametrize(
        "picker",
        [
            lambda n: np.arange(n),                         # every group
            lambda n: np.array([0]),                        # first only
            lambda n: np.array([n - 1]),                    # last only
            lambda n: np.arange(n)[:: max(1, n // 5)],      # strided sample
        ],
    )
    def test_subplan_rows_bitwise_equal(self, medium_particles, picker):
        from repro.pp.plan import slice_plan

        solver, sweep, kernel = self._sweep(medium_particles)
        plan = sweep["plan"]
        groups = picker(plan.n_groups)
        sub = slice_plan(plan, groups)
        out = np.zeros_like(sweep["acc_sorted"])
        PlanExecutor(use_native=False).execute(
            sub, kernel,
            sweep["pos_sorted"], sweep["mass_sorted"],
            sweep["node_com"], sweep["node_mass"],
            out=out,
        )
        rows = multi_arange(plan.group_lo[groups], plan.group_hi[groups])
        np.testing.assert_array_equal(
            out[rows], sweep["acc_sorted"][rows]
        )
        # rows no sampled group owns were never touched
        untouched = np.setdiff1d(np.arange(len(out)), rows)
        assert not out[untouched].any()

    def test_empty_selection(self, medium_particles):
        from repro.pp.plan import slice_plan

        _, sweep, _ = self._sweep(medium_particles)
        sub = slice_plan(sweep["plan"], np.empty(0, dtype=np.int64))
        assert sub.n_groups == 0

    def test_out_of_range_rejected(self, medium_particles):
        from repro.pp.plan import slice_plan

        _, sweep, _ = self._sweep(medium_particles)
        with pytest.raises(IndexError):
            slice_plan(sweep["plan"], np.array([sweep["plan"].n_groups]))
        with pytest.raises(ValueError):
            slice_plan(sweep["plan"], np.array([[0]]))
