"""Tests of the Morton key machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tree.morton import MORTON_BITS, morton_keys, morton_sort, spread_bits


class TestSpreadBits:
    def test_single_bits(self):
        for i in range(MORTON_BITS):
            out = spread_bits(np.array([1 << i], dtype=np.uint64))[0]
            assert out == 1 << (3 * i)

    def test_all_ones(self):
        x = np.array([(1 << MORTON_BITS) - 1], dtype=np.uint64)
        out = spread_bits(x)[0]
        expected = sum(1 << (3 * i) for i in range(MORTON_BITS))
        assert out == expected

    @given(st.integers(min_value=0, max_value=(1 << MORTON_BITS) - 1))
    def test_property_reference_implementation(self, v):
        out = int(spread_bits(np.array([v], dtype=np.uint64))[0])
        ref = 0
        for i in range(MORTON_BITS):
            if v & (1 << i):
                ref |= 1 << (3 * i)
        assert out == ref


class TestMortonKeys:
    def test_origin_is_zero(self):
        keys = morton_keys(np.array([[0.0, 0.0, 0.0]]))
        assert keys[0] == 0

    def test_corner_cells_distinct(self):
        eps = 1e-9
        pos = np.array(
            [
                [eps, eps, eps],
                [1 - eps, eps, eps],
                [eps, 1 - eps, eps],
                [eps, eps, 1 - eps],
                [1 - eps, 1 - eps, 1 - eps],
            ]
        )
        keys = morton_keys(pos)
        assert len(set(keys.tolist())) == 5
        assert keys[4] == max(keys)

    def test_x_is_most_significant(self):
        kx = morton_keys(np.array([[0.6, 0.0, 0.0]]))[0]
        ky = morton_keys(np.array([[0.0, 0.6, 0.0]]))[0]
        kz = morton_keys(np.array([[0.0, 0.0, 0.6]]))[0]
        assert kx > ky > kz

    def test_outside_cube_rejected(self):
        with pytest.raises(ValueError):
            morton_keys(np.array([[1.5, 0.0, 0.0]]))
        with pytest.raises(ValueError):
            morton_keys(np.array([[-0.1, 0.0, 0.0]]))

    def test_upper_boundary_clamped(self):
        keys = morton_keys(np.array([[1.0, 1.0, 1.0]]))
        assert keys[0] == morton_keys(np.array([[1 - 1e-12, 1 - 1e-12, 1 - 1e-12]]))[0]

    def test_locality(self):
        """Points in the same octant share the leading 3 bits."""
        rng = np.random.default_rng(0)
        pos = rng.random((100, 3)) * 0.5  # all in octant (0,0,0)
        keys = morton_keys(pos)
        assert np.all((keys >> np.uint64(3 * MORTON_BITS - 3)) == 0)

    def test_custom_origin_and_size(self):
        pos = np.array([[10.5, 10.5, 10.5]])
        keys = morton_keys(pos, origin=10.0, size=1.0)
        ref = morton_keys(np.array([[0.5, 0.5, 0.5]]))
        assert keys[0] == ref[0]

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            morton_keys(np.zeros((1, 3)), bits=0)
        with pytest.raises(ValueError):
            morton_keys(np.zeros((1, 3)), bits=25)


class TestMortonSort:
    def test_sorted_keys_monotone(self, rng):
        pos = rng.random((200, 3))
        perm = morton_sort(pos)
        keys = morton_keys(pos)[perm]
        assert np.all(np.diff(keys.astype(np.int64)) >= 0)

    def test_is_permutation(self, rng):
        pos = rng.random((50, 3))
        perm = morton_sort(pos)
        assert sorted(perm.tolist()) == list(range(50))
