"""Tests of the 2LPT initial conditions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cosmology.params import EINSTEIN_DE_SITTER
from repro.ic.lpt2 import Lpt2IC, second_order_displacement
from repro.ic.zeldovich import ZeldovichIC


def _flat_pk(amp=1e-6):
    return lambda k, z=0.0: amp * np.ones_like(np.asarray(k))


def _plane_wave_psi(n, axis=0, mode=1, amp=0.01):
    """psi1 for a single plane wave delta = A k sin(k x)."""
    x = np.arange(n) / n
    psi = np.zeros((n, n, n, 3))
    shape = [1, 1, 1]
    shape[axis] = n
    psi[..., axis] = amp * np.cos(2 * np.pi * mode * x).reshape(shape)
    return psi


class TestSecondOrderDisplacement:
    def test_zero_for_single_plane_wave(self):
        """The 2LPT source vanishes identically for one plane wave
        (Zel'dovich is exact in 1-D)."""
        psi2 = second_order_displacement(_plane_wave_psi(16))
        np.testing.assert_allclose(psi2, 0.0, atol=1e-14)

    def test_crossed_waves_analytic(self):
        """Two orthogonal waves psi = (A cos kx, B cos ky, 0):
        source = phi,xx phi,yy = AB k^2 sin(kx) sin(ky); the solution
        has psi2_x = -(AB k/2) cos(kx) sin(ky) ... verified against the
        direct Fourier inversion component by component."""
        n = 32
        k = 2 * np.pi
        A, B = 0.01, 0.02
        psi1 = _plane_wave_psi(n, axis=0, amp=A) + np.transpose(
            _plane_wave_psi(n, axis=0, amp=B), (1, 0, 2, 3)
        )[..., [1, 0, 2]]
        # build psi1 = (A cos kx, B cos ky, 0) explicitly instead:
        x = np.arange(n) / n
        psi1 = np.zeros((n, n, n, 3))
        psi1[..., 0] = (A * np.cos(k * x))[:, None, None]
        psi1[..., 1] = (B * np.cos(k * x))[None, :, None]
        psi2 = second_order_displacement(psi1)
        # phi1 = -(A/k) sin kx - (B/k) sin ky  (psi1 = -grad phi1), so
        # S = phi1,xx phi1,yy = (A k sin kx)(B k sin ky); with the
        # standard convention div psi2 = +S:
        # psi2_x = -(A B k / 2) cos kx sin ky
        xg = x[:, None, None]
        yg = x[None, :, None]
        expected_x = -(A * B * k / 2.0) * np.cos(k * xg) * np.sin(k * yg)
        expected_y = -(A * B * k / 2.0) * np.sin(k * xg) * np.cos(k * yg)
        np.testing.assert_allclose(
            psi2[..., 0], np.broadcast_to(expected_x, (n, n, n)), atol=1e-12
        )
        np.testing.assert_allclose(
            psi2[..., 1], np.broadcast_to(expected_y, (n, n, n)), atol=1e-12
        )
        np.testing.assert_allclose(psi2[..., 2], 0.0, atol=1e-13)

    def test_divergence_convention(self):
        """div psi2 == +S, computed independently via FFT."""
        rng = np.random.default_rng(9)
        n = 16
        # smooth random psi1 from a random potential
        from repro.ic.grf import gaussian_random_field
        from repro.mesh.greens import kvectors

        phi = gaussian_random_field(n, lambda k: 1e-4 / (1 + k**4), seed=2)
        kx, ky, kz = kvectors(n, 1.0)
        ks = (kx, ky, kz)
        phik = np.fft.rfftn(phi)
        # band-limit: FFT derivatives are ill-defined on the Nyquist
        # planes (the real displacement fields are built Nyquist-free)
        k_nyq = np.pi * n
        phik = phik * (
            (np.abs(kx) < k_nyq) & (np.abs(ky) < k_nyq) & (np.abs(kz) < k_nyq)
        )
        psi1 = np.empty((n, n, n, 3))
        for i, k in enumerate(ks):
            psi1[..., i] = np.fft.irfftn(
                -1j * k * phik, s=(n, n, n), axes=(0, 1, 2)
            )
        # the source from the tidal tensor phi,ij
        d = {}
        for i in range(3):
            for j in range(3):
                d[(i, j)] = np.fft.irfftn(
                    -ks[i] * ks[j] * phik, s=(n, n, n), axes=(0, 1, 2)
                )
        S = (
            d[(0, 0)] * d[(1, 1)]
            + d[(0, 0)] * d[(2, 2)]
            + d[(1, 1)] * d[(2, 2)]
            - d[(0, 1)] ** 2
            - d[(0, 2)] ** 2
            - d[(1, 2)] ** 2
        )
        psi2 = second_order_displacement(psi1)
        div = np.zeros((n, n, n))
        for i, k in enumerate(ks):
            div += np.fft.irfftn(
                1j * k * np.fft.rfftn(psi2[..., i]), s=(n, n, n), axes=(0, 1, 2)
            )
        # compare mode by mode away from the Nyquist planes (squaring
        # band-limited fields aliases power onto Nyquist, where real
        # FFT round trips cannot represent a gradient)
        mask = (np.abs(kx) < k_nyq) & (np.abs(ky) < k_nyq) & (np.abs(kz) < k_nyq)
        div_k = np.fft.rfftn(div) * mask
        s_k = np.fft.rfftn(S) * mask
        s_k[0, 0, 0] = 0.0  # the divergence has no DC component
        np.testing.assert_allclose(div_k, s_k, atol=1e-10)

    def test_spherical_compression_enhances_collapse(self):
        """Isotropic compression: the 2LPT term must push particles
        further inward (the +17/21 > +14/21 spherical-collapse
        coefficient)."""
        n = 32
        k = 2 * np.pi
        x = np.arange(n) / n
        amp = 0.01
        # psi1 = -grad phi with phi = (amp/k) (cos kx + cos ky + cos kz):
        # converging flow toward the origin-centered overdensity
        psi1 = np.zeros((n, n, n, 3))
        psi1[..., 0] = (amp * np.sin(k * x))[:, None, None]
        psi1[..., 1] = (amp * np.sin(k * x))[None, :, None]
        psi1[..., 2] = (amp * np.sin(k * x))[None, None, :]
        # delta1 = -div psi1 = -amp k (cos kx + cos ky + cos kz):
        # overdense (converging flow) at the cube center (0.5, 0.5, 0.5)
        psi2 = second_order_displacement(psi1)
        d2 = -3.0 / 7.0
        # probe just +x of the overdensity: the first-order flow points
        # inward (-x); the 2LPT term D2 psi2 must point the same way
        mid = (n // 2 + 1, n // 2, n // 2)
        first = psi1[mid][0]
        second = d2 * psi2[mid][0]
        assert first < 0  # converging flow at the probe
        assert first * second > 0  # same direction: enhanced collapse

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            second_order_displacement(np.zeros((4, 4, 4)))


class TestLpt2IC:
    def test_reduces_to_zeldovich_at_low_amplitude(self):
        """Second-order terms scale as D^2: at tiny amplitude 2LPT and
        Zel'dovich agree to first order."""
        kwargs = dict(n_per_dim=8, mesh_n=16, seed=3)
        z1 = ZeldovichIC(EINSTEIN_DE_SITTER, _flat_pk(1e-10), **kwargs)
        z2 = Lpt2IC(EINSTEIN_DE_SITTER, _flat_pk(1e-10), **kwargs)
        a = 0.01
        p1, m1, _ = z1.generate(a)
        p2, m2, _ = z2.generate(a)
        d = np.abs(p2 - p1)
        d = np.minimum(d, 1 - d)
        rms1 = z1.rms_displacement(a)
        assert d.max() < 1e-3 * rms1

    def test_second_order_term_has_right_scaling(self):
        """The 1LPT/2LPT position difference grows as D^2 (~a^2 in
        EdS)."""
        kwargs = dict(n_per_dim=8, mesh_n=16, seed=4)
        z1 = ZeldovichIC(EINSTEIN_DE_SITTER, _flat_pk(1e-4), **kwargs)
        z2 = Lpt2IC(EINSTEIN_DE_SITTER, _flat_pk(1e-4), **kwargs)

        def diff(a):
            p1, _, _ = z1.generate(a)
            p2, _, _ = z2.generate(a)
            d = p2 - p1
            d -= np.round(d)
            return float(np.sqrt((d**2).sum(axis=1)).mean())

        assert diff(0.02) / diff(0.01) == pytest.approx(4.0, rel=1e-3)

    def test_masses_match_zeldovich(self):
        z2 = Lpt2IC(EINSTEIN_DE_SITTER, _flat_pk(), n_per_dim=4, mesh_n=8)
        _, _, mass = z2.generate(0.01)
        assert mass.sum() == pytest.approx(3.0 / (8 * np.pi))

    def test_momentum_includes_second_order(self):
        """2LPT momenta differ from Zel'dovich by the f2 D2 psi2 term."""
        kwargs = dict(n_per_dim=8, mesh_n=16, seed=5)
        z1 = ZeldovichIC(EINSTEIN_DE_SITTER, _flat_pk(1e-4), **kwargs)
        z2 = Lpt2IC(EINSTEIN_DE_SITTER, _flat_pk(1e-4), **kwargs)
        a = 0.05
        _, m1, _ = z1.generate(a)
        _, m2, _ = z2.generate(a)
        assert not np.allclose(m1, m2)
        # EdS: dp2 = a^2 H f2 D2 psi2 with f2 = 2, D2 = -3/7 a^2;
        # the offset direction is the second-order displacement
        p1, _, _ = z1.generate(a)
        p2, _, _ = z2.generate(a)
        dx = p2 - p1
        dx -= np.round(dx)
        dp = m2 - m1
        # dp = a^2 H f2 (D2 psi2) = a^2 H f2 dx -> exactly parallel
        h = a**-1.5
        np.testing.assert_allclose(dp, a**2 * h * 2.0 * dx, atol=1e-12)
