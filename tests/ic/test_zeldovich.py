"""Tests of the Zel'dovich initial-condition generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cosmology.params import EINSTEIN_DE_SITTER, WMAP7
from repro.ic.zeldovich import ZeldovichIC, particle_mass


def _flat_pk(amp=1e-6):
    return lambda k, z=0.0: amp * np.ones_like(np.asarray(k))


class TestParticleMass:
    def test_code_units_value(self):
        m = particle_mass(EINSTEIN_DE_SITTER, 100)
        assert m == pytest.approx(3.0 / (8 * np.pi * 100))

    def test_total_mass_independent_of_n(self):
        m1 = particle_mass(WMAP7, 1000) * 1000
        m2 = particle_mass(WMAP7, 8000) * 8000
        assert m1 == pytest.approx(m2)

    def test_validation(self):
        with pytest.raises(ValueError):
            particle_mass(WMAP7, 0)


class TestZeldovichIC:
    @pytest.fixture(scope="class")
    def ic(self):
        return ZeldovichIC(
            EINSTEIN_DE_SITTER, _flat_pk(), n_per_dim=8, mesh_n=16, seed=3
        )

    def test_lattice_centered_and_uniform(self, ic):
        q = ic.lattice()
        assert q.shape == (512, 3)
        assert q.min() == pytest.approx(0.5 / 8)
        assert q.max() == pytest.approx(7.5 / 8)

    def test_generate_shapes(self, ic):
        pos, mom, mass = ic.generate(a_start=0.01)
        assert pos.shape == (512, 3)
        assert mom.shape == (512, 3)
        assert mass.shape == (512,)
        assert np.all((pos >= 0) & (pos < 1))

    def test_displacements_grow_with_a(self, ic):
        p1, _, _ = ic.generate(a_start=0.005)
        p2, _, _ = ic.generate(a_start=0.01)
        q = ic.lattice()

        def disp(p):
            d = p - q
            return d - np.round(d)

        # EdS: D = a, so displacements double
        np.testing.assert_allclose(disp(p2), 2 * disp(p1), atol=1e-12)

    def test_momentum_parallel_to_displacement(self, ic):
        """Zel'dovich: p is proportional to the displacement field."""
        a = 0.01
        pos, mom, _ = ic.generate(a_start=a)
        q = ic.lattice()
        d = pos - q
        d -= np.round(d)
        # p = a^2 H f D psi; displacement = D psi
        # EdS: H = a^-1.5, f = 1 -> p = a^0.5 * displacement
        np.testing.assert_allclose(mom, np.sqrt(a) * d, atol=1e-10)

    def test_displacement_field_divergence_is_minus_delta(self, ic):
        """-div(psi) must reconstruct the density field (up to the
        Nyquist planes, which the displacement cannot represent)."""
        delta = ic.density_field()
        psi = ic.displacement_field()
        n = ic.mesh_n
        k1 = 2 * np.pi * np.fft.fftfreq(n, d=1.0 / n)
        kzv = 2 * np.pi * np.fft.rfftfreq(n, d=1.0 / n)
        ks = (k1[:, None, None], k1[None, :, None], kzv[None, None, :])
        div = np.zeros_like(delta)
        for ax in range(3):
            div += np.fft.irfftn(
                1j * ks[ax] * np.fft.rfftn(psi[..., ax]),
                s=delta.shape,
                axes=(0, 1, 2),
            )
        # reference: delta with Nyquist planes removed
        dk = np.fft.rfftn(delta)
        k_nyq = np.pi * n
        dk *= (np.abs(ks[0]) < k_nyq) & (np.abs(ks[1]) < k_nyq) & (
            np.abs(ks[2]) < k_nyq
        )
        expected = np.fft.irfftn(dk, s=delta.shape, axes=(0, 1, 2))
        np.testing.assert_allclose(-div, expected, atol=1e-10)

    def test_rms_displacement_scales(self, ic):
        r1 = ic.rms_displacement(0.005)
        r2 = ic.rms_displacement(0.01)
        assert r2 == pytest.approx(2 * r1, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZeldovichIC(WMAP7, _flat_pk(), n_per_dim=1)
        with pytest.raises(ValueError):
            ZeldovichIC(WMAP7, _flat_pk(), n_per_dim=8, mesh_n=4)
        ic = ZeldovichIC(WMAP7, _flat_pk(), n_per_dim=4)
        with pytest.raises(ValueError):
            ic.generate(a_start=0.0)

    def test_default_mesh(self):
        ic = ZeldovichIC(WMAP7, _flat_pk(), n_per_dim=4)
        assert ic.mesh_n == 8

    def test_linear_density_from_particles(self):
        """Assigning the displaced particles to a mesh recovers the
        linear density field mode by mode, attenuated by the known
        assignment (CIC on the coarse mesh) and displacement-sampling
        windows."""
        from repro.mesh.assignment import assign_mass

        ic = ZeldovichIC(
            EINSTEIN_DE_SITTER, _flat_pk(3e-7), n_per_dim=16, mesh_n=16, seed=11
        )
        a = 0.02
        pos, _, mass = ic.generate(a_start=a)
        n = 8  # coarse mesh: keep only well-sampled modes
        mesh = assign_mass(pos, mass, n, scheme="cic")
        delta_meas = np.fft.rfftn(mesh / mesh.mean() - 1.0) / n**3
        delta_lin = np.fft.rfftn(ic.density_field() * a) / ic.mesh_n**3
        for m in [(1, 0, 0), (0, 1, 0), (0, 0, 1), (2, 0, 0), (1, 1, 0), (1, 1, 1)]:
            window = np.prod(
                [np.sinc(md / n) ** 2 * np.cos(np.pi * md / ic.mesh_n) for md in m]
            )
            ratio = delta_meas[m] / delta_lin[m]
            assert abs(ratio - window) < 0.1 * window
