"""Tests of the Gaussian random field generator and P(k) estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ic.grf import gaussian_random_field, measure_power_spectrum


def _power_law(amplitude=1e-4, slope=0.0):
    return lambda k: amplitude * k**slope


class TestGaussianRandomField:
    def test_zero_mean(self):
        delta = gaussian_random_field(32, _power_law(), seed=1)
        assert abs(delta.mean()) < 1e-10  # DC mode is zeroed

    def test_deterministic_given_seed(self):
        a = gaussian_random_field(16, _power_law(), seed=5)
        b = gaussian_random_field(16, _power_law(), seed=5)
        np.testing.assert_array_equal(a, b)
        c = gaussian_random_field(16, _power_law(), seed=6)
        assert not np.allclose(a, c)

    def test_real_output(self):
        delta = gaussian_random_field(16, _power_law(), seed=2)
        assert delta.dtype == np.float64
        assert delta.shape == (16, 16, 16)

    def test_variance_scales_with_amplitude(self):
        d1 = gaussian_random_field(32, _power_law(1e-4), seed=3)
        d2 = gaussian_random_field(32, _power_law(4e-4), seed=3)
        assert d2.var() / d1.var() == pytest.approx(4.0, rel=1e-10)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            gaussian_random_field(16, lambda k: -np.ones_like(k))

    def test_small_mesh_rejected(self):
        with pytest.raises(ValueError):
            gaussian_random_field(1, _power_law())

    def test_gaussianity(self):
        """One-point distribution is Gaussian: |skewness| and excess
        kurtosis are small for a white spectrum."""
        delta = gaussian_random_field(32, _power_law(), seed=4)
        x = delta.ravel() / delta.std()
        assert abs(np.mean(x**3)) < 0.05
        assert abs(np.mean(x**4) - 3.0) < 0.15


class TestMeasurePowerSpectrum:
    def test_roundtrip_white_spectrum(self):
        amp = 3.0e-5
        delta = gaussian_random_field(64, _power_law(amp), seed=7)
        k, pk, counts = measure_power_spectrum(delta, n_bins=10)
        # high-count bins recover the input amplitude
        good = counts > 200
        np.testing.assert_allclose(pk[good], amp, rtol=0.2)

    def test_roundtrip_power_law(self):
        delta = gaussian_random_field(64, _power_law(1e-6, -1.0), seed=8)
        k, pk, counts = measure_power_spectrum(delta, n_bins=10)
        good = counts > 200
        slope = np.polyfit(np.log(k[good]), np.log(pk[good]), 1)[0]
        assert slope == pytest.approx(-1.0, abs=0.15)

    def test_single_mode(self):
        """A pure plane wave puts all power in one bin."""
        n = 32
        x = np.arange(n) / n
        delta = 0.1 * np.cos(2 * np.pi * 4 * x)[:, None, None] * np.ones((1, n, n))
        k, pk, counts = measure_power_spectrum(delta, n_bins=12)
        imax = np.argmax(pk)
        assert k[imax] == pytest.approx(2 * np.pi * 4, rel=0.2)
        # Parseval: sum over modes of P / V equals the field variance
        assert np.sum(pk * counts) == pytest.approx(delta.var(), rel=1e-6)
        # and the peak bin carries essentially all of it
        assert pk[imax] * counts[imax] == pytest.approx(delta.var(), rel=1e-3)

    def test_rejects_noncubic(self):
        with pytest.raises(ValueError):
            measure_power_spectrum(np.zeros((4, 4, 5)))

    def test_box_scaling(self):
        """P carries volume units: doubling the box scales P by 8 at
        fixed mode amplitude."""
        delta = gaussian_random_field(32, _power_law(), seed=9)
        k1, p1, _ = measure_power_spectrum(delta, box=1.0)
        k2, p2, _ = measure_power_spectrum(delta, box=2.0)
        np.testing.assert_allclose(p2, 8.0 * p1, rtol=1e-12)
        np.testing.assert_allclose(k2, 0.5 * k1, rtol=1e-12)
