"""Tests of the cell-list machinery and the P3M short-range baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.forces.direct import direct_forces_cutoff
from repro.pp.celllist import CellList, p3m_short_range_forces
from repro.pp.kernel import InteractionCounter


class TestCellList:
    def test_all_particles_binned(self, rng):
        pos = rng.random((100, 3))
        cl = CellList(pos, rcut=0.2)
        assert cl.occupancy().sum() == 100

    def test_cell_members_consistent(self, rng):
        pos = rng.random((200, 3))
        cl = CellList(pos, rcut=0.25)
        n = cl.n_cells
        seen = []
        for cx in range(n):
            for cy in range(n):
                for cz in range(n):
                    seen.extend(cl.cell_members(cx, cy, cz).tolist())
        assert sorted(seen) == list(range(200))

    def test_members_in_their_cell(self, rng):
        pos = rng.random((100, 3))
        cl = CellList(pos, rcut=0.2)
        w = 1.0 / cl.n_cells
        for cx in range(cl.n_cells):
            members = cl.cell_members(cx, 0, 0)
            if len(members):
                assert np.all(pos[members, 0] >= cx * w)
                assert np.all(pos[members, 0] < (cx + 1) * w)

    def test_neighborhood_covers_cutoff(self, rng):
        """Every pair within rcut appears in some cell's neighborhood."""
        pos = rng.random((80, 3))
        rcut = 0.2
        cl = CellList(pos, rcut)
        from repro.utils.periodic import minimum_image

        for i in range(len(pos)):
            c = np.minimum(
                (pos[i] * cl.n_cells).astype(int), cl.n_cells - 1
            )
            neigh = set(cl.neighborhood_members(*c).tolist())
            d = minimum_image(pos - pos[i])
            close = np.flatnonzero(np.sqrt((d**2).sum(axis=1)) <= rcut)
            assert set(close.tolist()) <= neigh

    def test_periodic_neighborhood_wraps(self):
        pos = np.array([[0.01, 0.5, 0.5], [0.99, 0.5, 0.5]])
        cl = CellList(pos, rcut=0.2)
        neigh = cl.neighborhood_members(0, 2, 2)
        assert 1 in set(neigh.tolist())

    def test_validation(self):
        with pytest.raises(ValueError):
            CellList(np.zeros((1, 3)), rcut=0.0)
        with pytest.raises(ValueError):
            CellList(np.zeros((1, 3)), rcut=0.7)

    def test_cost_estimate_uniform(self, rng):
        """Uniform occupancy: cost ~ N * 27 * N/cells."""
        pos = rng.random((1000, 3))
        cl = CellList(pos, rcut=0.1)
        per_cell = 1000 / cl.n_cells**3
        expected = 1000 * 27 * per_cell
        assert cl.cost_estimate() == pytest.approx(expected, rel=0.3)

    def test_cost_estimate_quadratic_in_clustering(self, rng):
        """The paper's argument: piling particles into one cell makes
        the P3M cost quadratic (1000x density -> 10^6x cost)."""
        n = 2000
        uniform = rng.random((n, 3))
        clustered = 0.05 * rng.random((n, 3))  # all inside one cell
        c_u = CellList(uniform, rcut=0.1).cost_estimate()
        c_c = CellList(clustered, rcut=0.1).cost_estimate()
        assert c_c > 20 * c_u
        assert c_c == pytest.approx(n * n, rel=0.5)


class TestP3MShortRange:
    def test_matches_direct_cutoff(self, clustered_particles):
        pos, mass = clustered_particles
        split = S2ForceSplit(rcut=0.15)
        acc = p3m_short_range_forces(pos, mass, split, eps=1e-4)
        ref = direct_forces_cutoff(pos, mass, split, box=1.0, eps=1e-4)
        np.testing.assert_allclose(acc, ref, atol=1e-10)

    def test_matches_tree_short_range(self, clustered_particles):
        """P3M and the (exactly opened) tree compute the same physics."""
        from repro.tree.traversal import tree_forces

        pos, mass = clustered_particles
        split = S2ForceSplit(rcut=0.12)
        acc_p3m = p3m_short_range_forces(pos, mass, split, eps=1e-4)
        acc_tree, _ = tree_forces(
            pos, mass, theta=1e-6, split=split, eps=1e-4, periodic=True
        )
        np.testing.assert_allclose(acc_p3m, acc_tree, rtol=1e-9, atol=1e-11)

    def test_interaction_count_matches_cost_estimate(self, rng):
        pos = rng.random((300, 3))
        mass = np.ones(300)
        split = S2ForceSplit(rcut=0.2)
        counter = InteractionCounter()
        p3m_short_range_forces(pos, mass, split, counter=counter)
        cl = CellList(pos, split.cutoff_radius)
        assert counter.interactions == cl.cost_estimate()
