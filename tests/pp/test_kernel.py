"""Tests of the PP force kernel against the direct-summation reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.forces.direct import direct_forces_cutoff, direct_forces_open
from repro.pp.kernel import InteractionCounter, PPKernel, pp_forces


class TestPPKernelPlain:
    def test_matches_direct_open(self, clustered_particles):
        pos, mass = clustered_particles
        acc = pp_forces(pos, mass, eps=1e-3)
        ref = direct_forces_open(pos, mass, eps=1e-3)
        np.testing.assert_allclose(acc, ref, rtol=1e-13, atol=1e-13)

    def test_fast_rsqrt_close_to_exact(self, clustered_particles):
        pos, mass = clustered_particles
        exact = pp_forces(pos, mass, eps=1e-3, use_fast_rsqrt=False)
        fast = pp_forces(pos, mass, eps=1e-3, use_fast_rsqrt=True)
        mag = np.linalg.norm(exact, axis=1)
        err = np.linalg.norm(fast - exact, axis=1)
        assert np.max(err / np.maximum(mag, 1e-30)) < 1e-6

    def test_self_interaction_zero_without_softening(self):
        kern = PPKernel(eps=0.0)
        pos = np.array([[0.5, 0.5, 0.5]])
        acc = kern.accumulate(pos, pos, np.array([1.0]))
        np.testing.assert_array_equal(acc, 0.0)
        assert np.all(np.isfinite(acc))

    def test_self_interaction_zero_with_softening(self):
        kern = PPKernel(eps=0.01)
        pos = np.array([[0.5, 0.5, 0.5]])
        acc = kern.accumulate(pos, pos, np.array([1.0]))
        np.testing.assert_array_equal(acc, 0.0)


class TestPPKernelCutoff:
    def test_matches_direct_cutoff(self, clustered_particles):
        """Kernel + explicit neighbor offsets == direct cutoff forces.

        Run the kernel with all sources (no minimum image needed because
        the blob is central and rcut is small)."""
        pos, mass = clustered_particles
        split = S2ForceSplit(rcut=0.12)
        kern = PPKernel(split=split, eps=1e-4)
        acc = kern.accumulate(pos, pos, mass)
        ref = direct_forces_cutoff(pos, mass, split, box=1.0, eps=1e-4)
        # boundary particles may interact across the box in ref; select
        # interior targets only
        interior = np.all((pos > 0.15) & (pos < 0.85), axis=1)
        np.testing.assert_allclose(acc[interior], ref[interior], atol=1e-10)

    def test_force_exactly_zero_beyond_cutoff(self):
        split = S2ForceSplit(rcut=0.1)
        kern = PPKernel(split=split)
        tgt = np.array([[0.0, 0.0, 0.0]])
        src = np.array([[0.11, 0.0, 0.0], [0.0, 0.5, 0.0]])
        acc = kern.accumulate(tgt, src, np.ones(2))
        np.testing.assert_array_equal(acc, 0.0)

    def test_dx_offsets_apply_periodic_images(self):
        split = S2ForceSplit(rcut=0.1)
        kern = PPKernel(split=split)
        tgt = np.array([[0.02, 0.5, 0.5]])
        src = np.array([[0.98, 0.5, 0.5]])
        # without offsets: separation 0.96 > rcut -> zero
        a0 = kern.accumulate(tgt, src, np.ones(1))
        np.testing.assert_array_equal(a0, 0.0)
        # shift source by -1 box: separation 0.04 < rcut -> attractive -x
        a1 = kern.accumulate(
            tgt, src, np.ones(1), dx_offsets=np.array([[-1.0, 0.0, 0.0]])
        )
        assert a1[0, 0] < 0


class TestInteractionCounter:
    def test_counts_all_pairs(self, uniform_particles):
        pos, mass = uniform_particles
        counter = InteractionCounter()
        pp_forces(pos, mass, eps=1e-3, chunk=10, counter=counter)
        assert counter.interactions == len(pos) ** 2

    def test_flops_convention(self):
        counter = InteractionCounter()
        counter.record(10, 20)
        assert counter.interactions == 200
        assert counter.flops == 51 * 200

    def test_group_and_list_statistics(self):
        counter = InteractionCounter()
        counter.record(100, 2000)
        counter.record(120, 2600)
        assert counter.mean_group_size == pytest.approx(110.0)
        assert counter.mean_list_length == pytest.approx(2300.0)

    def test_reset_and_merge(self):
        a, b = InteractionCounter(), InteractionCounter()
        a.record(2, 3)
        b.record(4, 5)
        a.merge(b)
        assert a.interactions == 26
        assert a.calls == 2
        a.reset()
        assert a.interactions == 0
        assert a.mean_group_size == 0.0

    def test_streaming_memory_is_constant(self):
        """Regression: the counter must not grow with the call count
        (it used to append per-call Python lists without bound)."""
        import sys

        c = InteractionCounter()
        c.record(1, 1)
        size_small = sys.getsizeof(c) + sum(
            sys.getsizeof(v) for v in vars(c).values()
        )
        for _ in range(10_000):
            c.record(100, 2300)
        size_large = sys.getsizeof(c) + sum(
            sys.getsizeof(v) for v in vars(c).values()
        )
        assert size_large <= size_small + 64  # int widening only
        assert c.calls == 10_001

    def test_streaming_means_match_per_call_log(self):
        """The streamed <Ni>/<Nj> equal averaging an explicit log
        exactly (integer sums are exact below 2**53)."""
        rng = np.random.default_rng(5)
        ni = rng.integers(1, 200, size=500)
        nj = rng.integers(1, 4000, size=500)
        c = InteractionCounter()
        for a, b in zip(ni, nj):
            c.record(int(a), int(b))
        assert c.mean_group_size == np.mean(ni)
        assert c.mean_list_length == np.mean(nj)
        assert c.interactions == int(np.dot(ni, nj))

    def test_record_many_equals_record_loop(self):
        rng = np.random.default_rng(6)
        ni = rng.integers(0, 100, size=64)
        nj = rng.integers(0, 3000, size=64)
        loop, batch = InteractionCounter(), InteractionCounter()
        for a, b in zip(ni, nj):
            loop.record(int(a), int(b))
        batch.record_many(ni, nj)
        assert loop == batch

    def test_merge_after_streaming_conversion(self):
        """merge still composes: combined means weight every call once."""
        a, b = InteractionCounter(), InteractionCounter()
        a.record(10, 100)
        a.record(20, 200)
        b.record(30, 300)
        a.merge(b)
        assert a.calls == 3
        assert a.mean_group_size == pytest.approx(20.0)
        assert a.mean_list_length == pytest.approx(200.0)


class TestPPKernelPotential:
    def test_potential_matches_force_gradient(self):
        split = S2ForceSplit(rcut=0.3)
        kern = PPKernel(split=split, eps=0.0)
        src = np.array([[0.0, 0.0, 0.0]])
        mass = np.array([1.0])
        h = 1e-6
        for x in (0.05, 0.1, 0.14):
            tgt = np.array([[x, 0.0, 0.0]])
            tp = np.array([[x + h, 0.0, 0.0]])
            tm = np.array([[x - h, 0.0, 0.0]])
            dphi = (kern.potential(tp, src, mass) - kern.potential(tm, src, mass)) / (
                2 * h
            )
            acc = kern.accumulate(tgt, src, mass)[0, 0]
            assert acc == pytest.approx(-dphi[0], rel=1e-5)

    def test_potential_zero_beyond_cutoff(self):
        split = S2ForceSplit(rcut=0.1)
        kern = PPKernel(split=split)
        phi = kern.potential(
            np.array([[0.0, 0.0, 0.0]]),
            np.array([[0.2, 0.0, 0.0]]),
            np.array([1.0]),
        )
        np.testing.assert_array_equal(phi, 0.0)
