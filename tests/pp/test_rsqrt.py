"""Tests of the emulated HPC-ACE fast reciprocal square root."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pp.rsqrt import fast_rsqrt, rsqrt_relative_error, rsqrt_seed_8bit


class TestSeed:
    def test_seed_has_roughly_8_bits(self):
        x = np.geomspace(1e-12, 1e12, 1000)
        err = np.abs(rsqrt_seed_8bit(x) * np.sqrt(x) - 1.0)
        assert np.max(err) < 2.0**-8 * 1.01  # 8-bit mantissa rounding
        assert np.max(err) > 2.0**-11  # but genuinely approximate

    def test_seed_exact_on_powers_of_four(self):
        # 1/sqrt(4^k) is exactly representable in 8 mantissa bits
        x = 4.0 ** np.arange(-10, 11)
        np.testing.assert_array_equal(rsqrt_seed_8bit(x), 1.0 / np.sqrt(x))


class TestFastRsqrt:
    def test_24bit_accuracy(self):
        """The paper's third-order iteration reaches ~24-bit accuracy.

        The analytic bound is 2.5 * delta^3 with seed error
        delta <= 2^-8, i.e. 2.5 * 2^-24 ~ 1.5e-7."""
        x = np.geomspace(1e-20, 1e20, 10000)
        err = rsqrt_relative_error(x)
        assert np.max(err) < 2.5 * 2.0**-24 * 1.05

    def test_not_fully_double_precision(self):
        """It should NOT be double precision: the paper explicitly stops
        at 24 bits."""
        rng = np.random.default_rng(11)
        x = rng.random(10000) * 100 + 0.01
        err = rsqrt_relative_error(x)
        assert np.max(err) > 2.0**-40

    @given(st.floats(min_value=1e-30, max_value=1e30))
    def test_property_relative_error(self, x):
        assert float(rsqrt_relative_error(x)) < 2.5 * 2.0**-24 * 1.05

    def test_scalar_and_array_agree(self):
        xs = np.array([0.5, 2.0, 9.0])
        vec = fast_rsqrt(xs)
        scl = np.array([float(fast_rsqrt(x)) for x in xs])
        np.testing.assert_array_equal(vec, scl)

    def test_third_order_convergence_rate(self):
        """One iteration cubes the relative error (third-order method):
        seed error ~2^-8 -> refined error ~2^-24 scale."""
        x = np.geomspace(0.1, 10.0, 1000)
        seed_err = np.max(np.abs(rsqrt_seed_8bit(x) * np.sqrt(x) - 1.0))
        ref_err = np.max(rsqrt_relative_error(x))
        # error^3 within an order of magnitude
        assert ref_err == pytest.approx(seed_err**3, rel=30.0)
