"""Tests of the GRAPE-5 API facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.forces.direct import direct_forces_open
from repro.pp.grape import PhantomGrape


class TestPipeline:
    def test_matches_direct_summation(self, clustered_particles):
        pos, mass = clustered_particles
        g5 = PhantomGrape(eps=1e-3)
        g5.set_n(len(pos))
        g5.set_xmj(0, pos, mass)
        acc = g5.calculate_forces_on(pos)
        ref = direct_forces_open(pos, mass, eps=1e-3)
        np.testing.assert_allclose(acc, ref, atol=1e-12)

    def test_incremental_board_filling(self, rng):
        """Loading j-particles in chunks equals loading them at once."""
        pos = rng.random((60, 3))
        mass = rng.random(60)
        tgt = rng.random((10, 3))
        whole = PhantomGrape(eps=1e-2)
        whole.set_n(60)
        whole.set_xmj(0, pos, mass)
        chunked = PhantomGrape(eps=1e-2)
        chunked.set_n(60)
        chunked.set_xmj(0, pos[:25], mass[:25])
        chunked.set_xmj(25, pos[25:], mass[25:])
        np.testing.assert_array_equal(
            whole.calculate_forces_on(tgt), chunked.calculate_forces_on(tgt)
        )

    def test_cutoff_pipeline(self):
        """With the g_P3M split attached: the paper's ported kernel."""
        split = S2ForceSplit(rcut=0.1)
        g5 = PhantomGrape(split=split)
        g5.set_n(1)
        g5.set_xmj(0, np.array([[0.5, 0.5, 0.5]]), np.array([1.0]))
        acc = g5.calculate_forces_on(np.array([[0.7, 0.5, 0.5]]))
        np.testing.assert_array_equal(acc, 0.0)  # beyond rcut

    def test_potential_readback(self):
        g5 = PhantomGrape()
        g5.set_n(1)
        g5.set_xmj(0, np.zeros((1, 3)), np.array([2.0]))
        g5.set_ip(np.array([[1.0, 0.0, 0.0]]))
        g5.run()
        assert g5.get_potential()[0] == pytest.approx(-2.0)

    def test_counter_accumulates(self, rng):
        g5 = PhantomGrape()
        g5.set_n(8)
        g5.set_xmj(0, rng.random((8, 3)), np.ones(8))
        g5.calculate_forces_on(rng.random((5, 3)))
        g5.calculate_forces_on(rng.random((3, 3)))
        assert g5.counter.interactions == 5 * 8 + 3 * 8


class TestProtocolErrors:
    def test_run_before_load(self):
        with pytest.raises(RuntimeError):
            PhantomGrape().run()

    def test_get_force_before_run(self):
        g5 = PhantomGrape()
        g5.set_n(1)
        g5.set_xmj(0, np.zeros((1, 3)), np.ones(1))
        g5.set_ip(np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            g5.get_force()

    def test_set_ip_invalidates_result(self):
        g5 = PhantomGrape()
        g5.set_n(1)
        g5.set_xmj(0, np.zeros((1, 3)), np.ones(1))
        g5.set_ip(np.ones((1, 3)))
        g5.run()
        g5.get_force()
        g5.set_ip(np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            g5.get_force()

    def test_jmem_capacity(self):
        g5 = PhantomGrape(jmemsize=4)
        with pytest.raises(ValueError):
            g5.set_n(5)

    def test_offset_bounds(self):
        g5 = PhantomGrape()
        g5.set_n(4)
        with pytest.raises(ValueError):
            g5.set_xmj(2, np.zeros((3, 3)), np.ones(3))

    def test_shape_validation(self):
        g5 = PhantomGrape()
        g5.set_n(4)
        with pytest.raises(ValueError):
            g5.set_xmj(0, np.zeros((2, 2)), np.ones(2))
        with pytest.raises(ValueError):
            g5.set_ip(np.zeros((2, 4)))


class TestSinglePrecision:
    def _loaded(self, precision):
        rng = np.random.default_rng(13)
        xj = rng.random((256, 3))
        mj = rng.random(256) / 256
        xi = rng.random((64, 3))
        g5 = PhantomGrape(eps=1e-3, precision=precision)
        g5.set_n(len(xj))
        g5.set_xmj(0, xj, mj)
        g5.set_ip(xi)
        g5.run()
        return g5.get_force()

    def test_single_close_to_double(self):
        a32 = self._loaded("single")
        a64 = self._loaded("double")
        np.testing.assert_allclose(a32, a64, rtol=1e-3, atol=1e-7)
        assert not np.array_equal(a32, a64)  # genuinely lower precision

    def test_single_counts_interactions(self):
        g5 = PhantomGrape(precision="single")
        g5.set_n(8)
        g5.set_xmj(0, np.random.default_rng(0).random((8, 3)), np.ones(8))
        g5.set_ip(np.zeros((4, 3)))
        g5.run()
        assert g5.counter.interactions == 32

    def test_rejects_unknown_precision(self):
        with pytest.raises(ValueError):
            PhantomGrape(precision="half")
