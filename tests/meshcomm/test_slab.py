"""Tests of mesh-region and slab-decomposition bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.meshcomm.slab import LocalMeshRegion, SlabDecomposition


class TestLocalMeshRegion:
    def test_array_shape_includes_ghosts(self):
        reg = LocalMeshRegion(n=16, lo=(0, 4, 8), shape=(4, 4, 4), ghost=2)
        assert reg.array_shape == (8, 8, 8)
        assert reg.allocate().shape == (8, 8, 8)

    def test_unwrapped_range(self):
        reg = LocalMeshRegion(n=16, lo=(2, 0, 0), shape=(4, 16, 16), ghost=1)
        assert reg.unwrapped_range(0) == (1, 7)

    def test_wrapped_indices_fold_into_mesh(self):
        reg = LocalMeshRegion(n=8, lo=(7, 0, 0), shape=(2, 8, 8), ghost=1)
        np.testing.assert_array_equal(reg.wrapped_indices(0), [6, 7, 0, 1])

    def test_interior_view(self):
        reg = LocalMeshRegion(n=8, lo=(0, 0, 0), shape=(2, 2, 2), ghost=1)
        arr = reg.allocate()
        arr[1, 1, 1] = 5.0
        interior = reg.interior(arr)
        assert interior.shape == (2, 2, 2)
        assert interior[0, 0, 0] == 5.0

    def test_interior_no_ghost(self):
        reg = LocalMeshRegion(n=8, lo=(0, 0, 0), shape=(2, 2, 2), ghost=0)
        arr = reg.allocate()
        assert reg.interior(arr) is arr

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalMeshRegion(n=0, lo=(0, 0, 0), shape=(1, 1, 1))
        with pytest.raises(ValueError):
            LocalMeshRegion(n=8, lo=(0, 0, 0), shape=(25, 1, 1))
        with pytest.raises(ValueError):
            LocalMeshRegion(n=8, lo=(0, 0, 0), shape=(21, 1, 1), ghost=2)
        with pytest.raises(ValueError):
            LocalMeshRegion(n=8, lo=(0, 0, 0), shape=(1, 1, 1), ghost=-1)

    def test_from_domain_covers_assignment_stencil(self):
        reg = LocalMeshRegion.from_domain(
            16, np.array([0.25, 0.0, 0.0]), np.array([0.5, 1.0, 1.0]), 1.0, 2
        )
        # domain x in [0.25, 0.5) = cells 4..7; TSC stencil reaches 3..8
        a, b = reg.unwrapped_range(0)
        assert a <= 3 - 2 + 2  # interior starts at or before cell 3
        assert b >= 8 + 1      # interior ends at or after cell 8

    def test_from_domain_full_axis(self):
        """A full-axis domain covers every cell (with aliased overlap):
        the TSC stencil of a particle at x -> 1 reaches cell n + 1."""
        reg = LocalMeshRegion.from_domain(8, np.zeros(3), np.ones(3), 1.0, 1)
        assert reg.shape == (11, 11, 11)
        assert set(reg.wrapped_indices(0).tolist()) == set(range(8))


class TestSlabDecomposition:
    def test_even_split(self):
        slabs = SlabDecomposition(16, 4)
        assert [slabs.range_of(i) for i in range(4)] == [
            (0, 4), (4, 8), (8, 12), (12, 16)
        ]

    def test_uneven_split_front_loaded(self):
        slabs = SlabDecomposition(10, 3)
        assert [slabs.range_of(i) for i in range(3)] == [(0, 4), (4, 7), (7, 10)]

    def test_owner_of(self):
        slabs = SlabDecomposition(16, 4)
        assert slabs.owner_of(0) == 0
        assert slabs.owner_of(7) == 1
        assert slabs.owner_of(15) == 3
        assert slabs.owner_of(-1) == 3  # wraps

    def test_shape_and_allocate(self):
        slabs = SlabDecomposition(8, 3)
        assert slabs.shape_of(0) == (3, 8, 8)
        assert slabs.allocate(2).shape == (2, 8, 8)

    def test_slab_limit_enforced(self):
        """The paper's constraint: FFT processes <= mesh points per dim."""
        with pytest.raises(ValueError, match="1-D slab"):
            SlabDecomposition(8, 9)
        with pytest.raises(ValueError):
            SlabDecomposition(8, 0)

    def test_len(self):
        assert len(SlabDecomposition(8, 5)) == 5
