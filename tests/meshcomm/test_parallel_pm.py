"""Tests of the full distributed PM cycle, including relay mesh mode.

The defining property: the distributed solver (any rank count, any
group count) produces the same long-range forces as the serial
:class:`repro.mesh.poisson.PMSolver` — the relay mesh method is a pure
communication optimization and must not change the physics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.mesh.poisson import PMSolver
from repro.meshcomm.parallel_pm import ParallelPM
from repro.mpi.runtime import MPIRuntime, run_spmd

N_MESH = 16


def _slab_domains(n_ranks):
    """1-D x-slice spatial domains."""
    doms = []
    for r in range(n_ranks):
        doms.append(
            (np.array([r / n_ranks, 0.0, 0.0]), np.array([(r + 1) / n_ranks, 1.0, 1.0]))
        )
    return doms


def _grid_domains(div):
    """3-D rectangular domains from a (dx, dy, dz) division."""
    doms = []
    for i in range(div[0]):
        for j in range(div[1]):
            for k in range(div[2]):
                lo = np.array([i / div[0], j / div[1], k / div[2]])
                hi = np.array([(i + 1) / div[0], (j + 1) / div[1], (k + 1) / div[2]])
                doms.append((lo, hi))
    return doms


def _owned(pos, lo, hi):
    return np.all((pos >= lo) & (pos < hi), axis=1)


def _run_parallel(pos, mass, domains, split=None, n_fft=None, n_groups=1):
    n_ranks = len(domains)

    def fn(comm):
        lo, hi = domains[comm.rank]
        sel = _owned(pos, lo, hi)
        ppm = ParallelPM(
            comm, N_MESH, split=split, n_fft=n_fft, n_groups=n_groups
        )
        acc = ppm.forces(pos[sel], mass[sel], lo, hi)
        return sel, acc

    results = run_spmd(n_ranks, fn)
    acc = np.full_like(pos, np.nan)
    covered = np.zeros(len(pos), dtype=bool)
    for sel, a in results:
        acc[sel] = a
        covered |= sel
    assert covered.all(), "domains must cover every particle"
    return acc


@pytest.fixture(scope="module")
def particles():
    rng = np.random.default_rng(2012)
    pos = rng.random((200, 3))
    mass = rng.random(200) / 200 + 1e-3
    return pos, mass


@pytest.fixture(scope="module")
def serial_ref(particles):
    pos, mass = particles
    split = S2ForceSplit(3.0 / N_MESH)
    return PMSolver(N_MESH, split=split).forces(pos, mass)


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("n_ranks,n_fft", [(1, 1), (2, 2), (4, 2), (4, 4)])
    def test_slab_domains(self, particles, serial_ref, n_ranks, n_fft):
        pos, mass = particles
        split = S2ForceSplit(3.0 / N_MESH)
        acc = _run_parallel(pos, mass, _slab_domains(n_ranks), split, n_fft)
        np.testing.assert_allclose(acc, serial_ref, atol=1e-11)

    def test_3d_domains(self, particles, serial_ref):
        pos, mass = particles
        split = S2ForceSplit(3.0 / N_MESH)
        acc = _run_parallel(pos, mass, _grid_domains((2, 2, 2)), split, n_fft=4)
        np.testing.assert_allclose(acc, serial_ref, atol=1e-11)

    def test_pure_pm_no_split(self, particles):
        pos, mass = particles
        ref = PMSolver(N_MESH).forces(pos, mass)
        acc = _run_parallel(pos, mass, _slab_domains(2))
        np.testing.assert_allclose(acc, ref, atol=1e-11)


class TestRelayMesh:
    @pytest.mark.parametrize("n_ranks,n_fft,n_groups", [
        (4, 2, 2),
        (6, 2, 3),
        (6, 3, 2),
        (8, 2, 4),
        (9, 3, 3),
    ])
    def test_relay_equals_direct(self, particles, serial_ref, n_ranks, n_fft, n_groups):
        """The relay mesh method is physics-neutral for every group
        layout (paper: replaces the global exchange only)."""
        pos, mass = particles
        split = S2ForceSplit(3.0 / N_MESH)
        acc = _run_parallel(
            pos, mass, _slab_domains(n_ranks), split, n_fft, n_groups
        )
        np.testing.assert_allclose(acc, serial_ref, atol=1e-11)

    def test_relay_reduces_senders_per_fft_process(self, particles):
        """The whole point of the method: with groups, the number of
        distinct sources sending to an FFT process during the mesh
        conversion drops from ~p to ~(group size)."""
        pos, mass = particles
        split = S2ForceSplit(3.0 / N_MESH)
        n_ranks, n_fft = 8, 2

        def job(n_groups):
            rt = MPIRuntime(n_ranks)
            domains = _slab_domains(n_ranks)

            def fn(comm):
                lo, hi = domains[comm.rank]
                sel = _owned(pos, lo, hi)
                ppm = ParallelPM(
                    comm, N_MESH, split=split, n_fft=n_fft, n_groups=n_groups
                )
                ppm.forces(pos[sel], mass[sel], lo, hi)

            rt.run(fn)
            ph = rt.traffic.phase("pm:mesh_to_slab")
            return ph.max_senders_per_receiver()

        direct = job(1)
        relay = job(4)
        assert relay < direct

    def test_invalid_group_config(self):
        def fn(comm):
            ParallelPM(comm, N_MESH, n_fft=4, n_groups=2)  # 8 > 4 ranks

        with pytest.raises(RuntimeError, match="n_groups"):
            run_spmd(4, fn)

    def test_invalid_n_fft(self):
        def fn(comm):
            ParallelPM(comm, N_MESH, n_fft=99)

        with pytest.raises(RuntimeError, match="n_fft"):
            run_spmd(2, fn)


class TestTimingAndTraffic:
    def test_table1_phase_names(self, particles):
        from repro.utils.timer import TimingLedger

        pos, mass = particles
        domains = _slab_domains(2)

        def fn(comm):
            lo, hi = domains[comm.rank]
            sel = _owned(pos, lo, hi)
            ppm = ParallelPM(comm, N_MESH)
            timing = TimingLedger()
            ppm.forces(pos[sel], mass[sel], lo, hi, timing=timing)
            return set(timing.as_dict())

        out = run_spmd(2, fn)
        expected = {
            "PM/density assignment",
            "PM/communication",
            "PM/FFT",
            "PM/acceleration on mesh",
            "PM/force interpolation",
        }
        for phases in out:
            assert expected <= phases

    def test_traffic_phases_recorded(self, particles):
        pos, mass = particles
        domains = _slab_domains(4)
        rt = MPIRuntime(4)

        def fn(comm):
            lo, hi = domains[comm.rank]
            sel = _owned(pos, lo, hi)
            ppm = ParallelPM(comm, N_MESH, n_fft=2)
            ppm.forces(pos[sel], mass[sel], lo, hi)

        rt.run(fn)
        m2s = rt.traffic.phase("pm:mesh_to_slab")
        s2m = rt.traffic.phase("pm:slab_to_mesh")
        assert m2s.total_bytes > 0
        assert s2m.total_bytes > 0
