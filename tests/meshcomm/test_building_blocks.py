"""Additional meshcomm coverage: building blocks and properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forces.cutoff import S2ForceSplit
from repro.mesh.poisson import PMSolver
from repro.meshcomm.parallel_pm import ParallelPM
from repro.meshcomm.regions import redistribute
from repro.meshcomm.slab import LocalMeshRegion
from repro.mpi.runtime import MPIRuntime, run_spmd


class TestSolvePotentialSlabs:
    def test_matches_serial_potential_mesh(self, rng):
        """The conversion + FFT building block alone (no particles)."""
        n = 16
        split = S2ForceSplit(3.0 / n)
        rho_global = rng.random((n, n, n))
        serial = PMSolver(n, split=split)
        ref = serial.potential_mesh(rho_global)

        def fn(comm):
            ppm = ParallelPM(comm, n, split=split, n_fft=2)
            a = comm.rank * (n // comm.size)
            b = (comm.rank + 1) * (n // comm.size)
            region = LocalMeshRegion(n=n, lo=(a, 0, 0), shape=(b - a, n, n))
            return ppm.solve_potential_slabs(
                rho_global[a:b].copy(), region
            )

        out = run_spmd(4, fn)
        # ranks 0 and 1 are the FFT processes (2 slabs of 8 planes)
        np.testing.assert_allclose(out[0], ref[:8], atol=1e-11)
        np.testing.assert_allclose(out[1], ref[8:], atol=1e-11)
        assert out[2] is None and out[3] is None


class TestSubcommTrafficAttribution:
    def test_messages_logged_with_world_ranks(self):
        """Traffic from split communicators must carry world node ids
        so the torus model routes correctly."""
        rt = MPIRuntime(4)

        def fn(comm):
            sub = comm.split(color=comm.rank // 2)  # {0,1} and {2,3}
            comm.traffic_phase("sub")
            if sub.rank == 0:
                sub.send(np.zeros(4), dest=1)
            else:
                sub.recv(source=0)
            comm.barrier()

        rt.run(fn)
        ph = rt.traffic.phase("sub")
        pairs = {(m.src, m.dst) for m in ph.messages}
        assert pairs == {(0, 1), (2, 3)}


class TestRedistributeProperty:
    @given(
        st.integers(0, 7),
        st.integers(1, 8),
        st.integers(0, 2),
        st.integers(0, 10**6),
    )
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_any_region(self, lo, width, ghost, seed):
        """full mesh -> arbitrary region -> full mesh preserves data
        (on the region's footprint, for any offset/width/ghost)."""
        n = 8
        rng = np.random.default_rng(seed)
        glob = rng.random((n, n, n))
        region = LocalMeshRegion(
            n=n, lo=(lo, 0, 0), shape=(width, n, n), ghost=ghost
        )
        full = LocalMeshRegion(n=n, lo=(0, 0, 0), shape=(n, n, n), ghost=0)

        def fn(comm):
            window = redistribute(comm, glob.copy(), full, region, "replace")
            # send the interior back; compare against the original
            interior_region = LocalMeshRegion(
                n=n, lo=region.lo, shape=region.shape, ghost=0
            )
            back = redistribute(
                comm, region.interior(window).copy(), interior_region, full,
                "add",
            )
            return window, back

        window, back = run_spmd(1, fn)[0]
        # the ghosted window holds the right global values
        idx = np.ix_(
            region.wrapped_indices(0),
            region.wrapped_indices(1),
            region.wrapped_indices(2),
        )
        np.testing.assert_array_equal(window, glob[idx])
        # cells covered by the interior came back identical; a region
        # wider than the axis overlaps itself, so compare as multiples
        counts = np.zeros(n)
        for x in interior_wrapped(region, n):
            counts[x] += 1
        for x in range(n):
            if counts[x] == 0:
                assert np.all(back[x] == 0.0)
            else:
                np.testing.assert_allclose(back[x], counts[x] * glob[x])


def interior_wrapped(region, n):
    a = region.lo[0]
    return [(a + i) % n for i in range(region.shape[0])]
