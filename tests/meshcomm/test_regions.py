"""Tests of generic region redistribution and the pencil PM solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.mesh.poisson import PMSolver
from repro.meshcomm.parallel_pencil_pm import ParallelPencilPM
from repro.meshcomm.regions import redistribute
from repro.meshcomm.slab import LocalMeshRegion
from repro.mpi.runtime import run_spmd

N = 8


def _fill_from_global(region, glob):
    ix = region.wrapped_indices(0)
    iy = region.wrapped_indices(1)
    iz = region.wrapped_indices(2)
    return glob[np.ix_(ix, iy, iz)].astype(float)


class TestRedistribute:
    def test_slab_to_pencil_replace(self):
        """x-slabs -> (y, z) pencils: every pencil cell covered once."""
        rng = np.random.default_rng(2)
        glob = rng.random((N, N, N))
        src = [
            LocalMeshRegion(n=N, lo=(4 * r, 0, 0), shape=(4, N, N), ghost=0)
            for r in range(2)
        ]
        dst = [
            LocalMeshRegion(n=N, lo=(0, 4 * (r // 1) % 8, 0), shape=(N, 4, N))
            for r in range(2)
        ]

        def fn(comm):
            local = _fill_from_global(src[comm.rank], glob)
            return redistribute(
                comm, local, src[comm.rank], dst[comm.rank], combine="replace"
            )

        out = run_spmd(2, fn)
        for r in range(2):
            np.testing.assert_allclose(out[r], _fill_from_global(dst[r], glob))

    def test_add_combines_overlapping_ghosts(self):
        """Ghosted sources contribute partial sums that must add."""
        src = [
            LocalMeshRegion(n=N, lo=(4 * r, 0, 0), shape=(4, N, N), ghost=1)
            for r in range(2)
        ]
        dst = [
            LocalMeshRegion(n=N, lo=(4 * r, 0, 0), shape=(4, N, N), ghost=0)
            for r in range(2)
        ]

        def fn(comm):
            local = src[comm.rank].allocate()
            local += 1.0  # every source cell contributes 1
            return redistribute(
                comm, local, src[comm.rank], dst[comm.rank], combine="add"
            )

        out = run_spmd(2, fn)
        # interior cells covered by 1 interior + possibly ghosts: the
        # x-planes adjacent to a boundary receive 2 contributions
        for r in range(2):
            assert out[r][1, 5, 5] >= 1.0
            # boundary plane: own interior + neighbor ghost
            assert out[r][0, 5, 5] == pytest.approx(2.0)

    def test_rank_without_source_or_dest(self):
        glob = np.arange(N**3, dtype=float).reshape(N, N, N)
        full = LocalMeshRegion(n=N, lo=(0, 0, 0), shape=(N, N, N))

        def fn(comm):
            if comm.rank == 0:
                return redistribute(comm, glob.copy(), full, None, "replace")
            return redistribute(comm, None, None, full, "replace")

        out = run_spmd(2, fn)
        assert out[0] is None
        np.testing.assert_array_equal(out[1], glob)

    def test_incomplete_coverage_detected(self):
        half = LocalMeshRegion(n=N, lo=(0, 0, 0), shape=(4, N, N))
        full = LocalMeshRegion(n=N, lo=(0, 0, 0), shape=(N, N, N))

        def fn(comm):
            redistribute(
                comm, half.allocate(), half, full, combine="replace"
            )

        with pytest.raises(RuntimeError, match="covered"):
            run_spmd(1, fn)

    def test_validation(self):
        full = LocalMeshRegion(n=N, lo=(0, 0, 0), shape=(N, N, N))

        def bad_combine(comm):
            redistribute(comm, None, None, full, combine="mean")

        with pytest.raises(RuntimeError, match="combine"):
            run_spmd(1, bad_combine)

        def mismatched(comm):
            redistribute(comm, np.zeros((2, 2, 2)), full, full)

        with pytest.raises(RuntimeError, match="match"):
            run_spmd(1, mismatched)


class TestParallelPencilPM:
    @pytest.fixture(scope="class")
    def particles(self):
        rng = np.random.default_rng(2013)
        pos = rng.random((150, 3))
        mass = rng.random(150) / 150 + 1e-3
        return pos, mass

    @pytest.mark.parametrize(
        "n_ranks,grid",
        [(1, (1, 1)), (2, (2, 1)), (4, (2, 2)), (6, (2, 2)), (4, None)],
    )
    def test_matches_serial_pm(self, particles, n_ranks, grid):
        pos, mass = particles
        split = S2ForceSplit(3.0 / 16)
        ref = PMSolver(16, split=split).forces(pos, mass)

        def fn(comm):
            lo = np.array([comm.rank / comm.size, 0.0, 0.0])
            hi = np.array([(comm.rank + 1) / comm.size, 1.0, 1.0])
            sel = np.all((pos >= lo) & (pos < hi), axis=1)
            ppm = ParallelPencilPM(comm, 16, split=split, grid=grid)
            return sel, ppm.forces(pos[sel], mass[sel], lo, hi)

        results = run_spmd(n_ranks, fn)
        acc = np.zeros_like(pos)
        for sel, a in results:
            acc[sel] = a
        np.testing.assert_allclose(acc, ref, atol=1e-10)

    def test_more_fft_processes_than_mesh_side(self, particles):
        """The point of the pencil path: a 4x4 grid = 16 FFT processes
        on an 8^3 mesh (the slab FFT caps at 8)."""
        pos, mass = particles
        split = S2ForceSplit(3.0 / 8)
        ref = PMSolver(8, split=split).forces(pos, mass)

        def fn(comm):
            lo = np.array([comm.rank / comm.size, 0.0, 0.0])
            hi = np.array([(comm.rank + 1) / comm.size, 1.0, 1.0])
            sel = np.all((pos >= lo) & (pos < hi), axis=1)
            ppm = ParallelPencilPM(comm, 8, split=split, grid=(4, 4))
            return sel, ppm.forces(pos[sel], mass[sel], lo, hi)

        results = run_spmd(16, fn)
        acc = np.zeros_like(pos)
        for sel, a in results:
            acc[sel] = a
        np.testing.assert_allclose(acc, ref, atol=1e-10)

    def test_invalid_grid(self, particles):
        def fn(comm):
            ParallelPencilPM(comm, 16, grid=(3, 3))

        with pytest.raises(RuntimeError, match="grid"):
            run_spmd(4, fn)