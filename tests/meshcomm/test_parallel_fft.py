"""Tests of the slab-decomposed parallel FFT against numpy's rfftn."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.mesh.greens import build_greens_function
from repro.meshcomm.parallel_fft import SlabFFT
from repro.meshcomm.slab import SlabDecomposition
from repro.mpi.runtime import run_spmd

N = 16


def _run_slab_fft(n_ranks, work):
    """Drive `work(fft, my_slab, slabs)` on n_ranks with a shared field."""
    rng = np.random.default_rng(99)
    glob = rng.random((N, N, N))
    slabs = SlabDecomposition(N, n_ranks)

    def fn(comm):
        fft = SlabFFT(comm, N)
        a, b = slabs.range_of(comm.rank)
        return work(fft, glob[a:b].copy(), comm)

    return glob, run_spmd(n_ranks, fn)


class TestForward:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4, 5])
    def test_matches_numpy_rfftn(self, n_ranks):
        glob, out = _run_slab_fft(
            n_ranks, lambda fft, slab, comm: fft.forward(slab)
        )
        ref = np.fft.rfftn(glob)
        slabs = SlabDecomposition(N, n_ranks)
        for r in range(n_ranks):
            ya, yb = slabs.range_of(r)
            np.testing.assert_allclose(out[r], ref[:, ya:yb, :], atol=1e-10)

    def test_shape_validation(self):
        def work(fft, slab, comm):
            with pytest.raises(ValueError):
                fft.forward(np.zeros((1, 2, 3)))
            return True

        _, out = _run_slab_fft(2, work)
        assert all(out)


class TestRoundtrip:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_inverse_of_forward(self, n_ranks):
        def work(fft, slab, comm):
            return fft.inverse(fft.forward(slab))

        glob, out = _run_slab_fft(n_ranks, work)
        slabs = SlabDecomposition(N, n_ranks)
        for r in range(n_ranks):
            a, b = slabs.range_of(r)
            np.testing.assert_allclose(out[r], glob[a:b], atol=1e-12)

    def test_kslab_shape_validation(self):
        def work(fft, slab, comm):
            with pytest.raises(ValueError):
                fft.inverse(np.zeros((2, 2, 2), dtype=complex))
            return True

        _, out = _run_slab_fft(2, work)
        assert all(out)


class TestConvolve:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_matches_serial_poisson_solve(self, n_ranks):
        """Distributed convolution with the S2 Green's function equals
        the serial rfftn/irfftn pipeline."""
        split = S2ForceSplit(3.0 / N)
        greens = build_greens_function(N, split=split, deconvolve=2)

        def work(fft, slab, comm):
            return fft.convolve(slab, fft.greens_slice(greens))

        glob, out = _run_slab_fft(n_ranks, work)
        ref = np.fft.irfftn(np.fft.rfftn(glob) * greens, s=glob.shape, axes=(0, 1, 2))
        slabs = SlabDecomposition(N, n_ranks)
        for r in range(n_ranks):
            a, b = slabs.range_of(r)
            np.testing.assert_allclose(out[r], ref[a:b], atol=1e-11)

    def test_transpose_traffic_stays_within_comm_fft(self):
        """The FFT transposes must be all-to-all among FFT ranks only."""
        from repro.mpi.runtime import MPIRuntime

        rt = MPIRuntime(4)
        slabs = SlabDecomposition(N, 2)
        rng = np.random.default_rng(1)
        glob = rng.random((N, N, N))

        def fn(comm):
            fft_comm = comm.split(color=0 if comm.rank < 2 else None)
            comm.traffic_phase("fft")
            if fft_comm is not None:
                fft = SlabFFT(fft_comm, N)
                a, b = slabs.range_of(fft_comm.rank)
                fft.forward(glob[a:b].copy())
            comm.barrier()

        rt.run(fn)
        ph = rt.traffic.phase("fft")
        ranks_involved = {m.src for m in ph.messages} | {
            m.dst for m in ph.messages
        }
        assert ranks_involved <= {0, 1}
