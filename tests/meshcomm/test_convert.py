"""Tests of the local<->slab mesh conversions (paper Fig. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.meshcomm.convert import local_to_slab, slab_to_local
from repro.meshcomm.slab import LocalMeshRegion, SlabDecomposition
from repro.mpi.runtime import run_spmd

N = 8  # global mesh


def _x_decomp_regions(n_ranks, ghost):
    """1-D x decomposition of the global mesh into n_ranks regions."""
    slabs = SlabDecomposition(N, n_ranks)
    regions = []
    for r in range(n_ranks):
        a, b = slabs.range_of(r)
        regions.append(
            LocalMeshRegion(n=N, lo=(a, 0, 0), shape=(b - a, N, N), ghost=ghost)
        )
    return regions


def _global_field(rng=None):
    if rng is None:
        rng = np.random.default_rng(123)
    return rng.random((N, N, N))


def _fill_local_from_global(region, glob):
    """Local array whose every cell holds the global value (as a
    complete potential would)."""
    ix = region.wrapped_indices(0)
    iy = region.wrapped_indices(1)
    iz = region.wrapped_indices(2)
    return glob[np.ix_(ix, iy, iz)].astype(float)


class TestLocalToSlab:
    @pytest.mark.parametrize("n_ranks,n_fft", [(1, 1), (2, 2), (4, 2), (4, 4), (6, 3)])
    def test_sums_partition_of_unity(self, n_ranks, n_fft):
        """Each rank contributes its interior slice of a known global
        field; slabs must reassemble the field exactly."""
        glob = _global_field()
        regions = _x_decomp_regions(n_ranks, ghost=2)
        slabs = SlabDecomposition(N, n_fft)

        def fn(comm):
            reg = regions[comm.rank]
            local = reg.allocate()
            # contribute only the interior (ghosts zero): a disjoint
            # partition of the global mesh
            g = reg.ghost
            local[g:-g, g:-g, g:-g] = _fill_local_from_global(reg, glob)[
                g:-g, g:-g, g:-g
            ]
            return local_to_slab(comm, local, reg, slabs)

        out = run_spmd(n_ranks, fn)
        for i in range(n_fft):
            a, b = slabs.range_of(i)
            np.testing.assert_allclose(out[i], glob[a:b], atol=1e-13)
        assert all(o is None for o in out[n_fft:])

    def test_ghost_contributions_fold_periodically(self):
        """Mass placed in a ghost cell lands in the wrapped global cell."""
        regions = _x_decomp_regions(2, ghost=1)
        slabs = SlabDecomposition(N, 2)

        def fn(comm):
            reg = regions[comm.rank]
            local = reg.allocate()
            if comm.rank == 0:
                # ghost plane at unwrapped x = -1 -> global x = N-1
                local[0, 1, 1] = 7.0  # local y index 1 -> global y 0
            return local_to_slab(comm, local, reg, slabs)

        out = run_spmd(2, fn)
        # global x = 7 belongs to slab 1 (range 4..8)
        assert out[1][3, 0, 0] == pytest.approx(7.0)
        assert out[0].sum() == 0.0

    def test_overlapping_contributions_sum(self):
        """Two ranks adding to the same global cell must sum."""
        regions = _x_decomp_regions(2, ghost=1)
        slabs = SlabDecomposition(N, 1)

        def fn(comm):
            reg = regions[comm.rank]
            local = reg.allocate()
            if comm.rank == 0:
                local[-1, 1, 1] = 1.0  # ghost at unwrapped x=4
            else:
                local[1, 1, 1] = 2.0  # interior at x=4
            return local_to_slab(comm, local, reg, slabs)

        out = run_spmd(2, fn)
        assert out[0][4, 0, 0] == pytest.approx(3.0)

    def test_rank_without_mesh(self):
        slabs = SlabDecomposition(N, 1)
        reg = LocalMeshRegion(n=N, lo=(0, 0, 0), shape=(N, N, N), ghost=0)
        glob = _global_field()

        def fn(comm):
            if comm.rank == 1:
                return local_to_slab(comm, None, None, slabs)
            return local_to_slab(comm, glob.copy(), reg, slabs)

        out = run_spmd(2, fn)
        np.testing.assert_allclose(out[0], glob)
        assert out[1] is None

    def test_shape_mismatch_rejected(self):
        slabs = SlabDecomposition(N, 1)
        reg = LocalMeshRegion(n=N, lo=(0, 0, 0), shape=(4, N, N), ghost=1)

        def fn(comm):
            return local_to_slab(comm, np.zeros((3, 3, 3)), reg, slabs)

        with pytest.raises(RuntimeError, match="does not match"):
            run_spmd(1, fn)


class TestSlabToLocal:
    @pytest.mark.parametrize("n_ranks,n_fft", [(1, 1), (2, 2), (4, 2), (4, 4), (6, 3)])
    @pytest.mark.parametrize("ghost", [0, 2, 3])
    def test_local_windows_reassembled(self, n_ranks, n_fft, ghost):
        glob = _global_field()
        regions = _x_decomp_regions(n_ranks, ghost=ghost)
        slabs = SlabDecomposition(N, n_fft)

        def fn(comm):
            reg = regions[comm.rank]
            slab = None
            if comm.rank < n_fft:
                a, b = slabs.range_of(comm.rank)
                slab = glob[a:b].copy()
            return slab_to_local(comm, slab, reg, slabs)

        out = run_spmd(n_ranks, fn)
        for r in range(n_ranks):
            expected = _fill_local_from_global(regions[r], glob)
            np.testing.assert_allclose(out[r], expected, atol=0)

    def test_3d_regions_with_wraparound(self):
        """A region hanging off the box corner (all dims wrap)."""
        glob = _global_field()
        reg = LocalMeshRegion(n=N, lo=(6, 6, 6), shape=(4, 4, 4), ghost=2)
        slabs = SlabDecomposition(N, 2)

        def fn(comm):
            slab = None
            if comm.rank < 2:
                a, b = slabs.range_of(comm.rank)
                slab = glob[a:b].copy()
            return slab_to_local(comm, slab, reg if comm.rank == 2 else None, slabs)

        out = run_spmd(3, fn)
        expected = _fill_local_from_global(reg, glob)
        np.testing.assert_allclose(out[2], expected, atol=0)
        assert out[0] is None

    def test_roundtrip_local_slab_local(self):
        """local (complete field) -> slab -> local returns the field."""
        glob = _global_field()
        regions = _x_decomp_regions(4, ghost=2)
        slabs = SlabDecomposition(N, 2)

        def fn(comm):
            reg = regions[comm.rank]
            local = reg.allocate()
            g = reg.ghost
            local[g:-g, g:-g, g:-g] = _fill_local_from_global(reg, glob)[
                g:-g, g:-g, g:-g
            ]
            slab = local_to_slab(comm, local, reg, slabs)
            return slab_to_local(comm, slab, reg, slabs)

        out = run_spmd(4, fn)
        for r in range(4):
            np.testing.assert_allclose(
                out[r], _fill_local_from_global(regions[r], glob), atol=1e-13
            )

    def test_missing_slab_rejected(self):
        slabs = SlabDecomposition(N, 1)
        reg = LocalMeshRegion(n=N, lo=(0, 0, 0), shape=(N, N, N), ghost=0)

        def fn(comm):
            return slab_to_local(comm, None, reg, slabs)

        with pytest.raises(RuntimeError, match="slab"):
            run_spmd(1, fn)
