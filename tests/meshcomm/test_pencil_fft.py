"""Tests of the pencil-decomposed parallel FFT (paper future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.mesh.greens import build_greens_function
from repro.meshcomm.pencil_fft import PencilFFT
from repro.mpi.runtime import run_spmd

N = 8

GRIDS = [(1, 1), (1, 2), (2, 2), (2, 3), (4, 2), (8, 8)]


def _run(grid, work):
    rng = np.random.default_rng(31)
    glob = rng.random((N, N, N))

    def fn(comm):
        fft = PencilFFT(comm, N, grid)
        (xa, xb), (ya, yb), (za, zb) = fft.real_ranges()
        return work(fft, glob[xa:xb, ya:yb, za:zb].astype(complex), comm)

    return glob, run_spmd(grid[0] * grid[1], fn)


class TestForward:
    @pytest.mark.parametrize("grid", GRIDS)
    def test_matches_numpy_fftn(self, grid):
        glob, out = _run(grid, lambda fft, pencil, comm: (fft, fft.forward(pencil)))
        ref = np.fft.fftn(glob)
        for fft, kp in out:
            (xa, xb), (ya, yb), _ = fft.kspace_ranges()
            np.testing.assert_allclose(kp, ref[xa:xb, ya:yb, :], atol=1e-10)

    def test_max_processes_is_n_squared(self):
        """The headline scalability gain over the 1-D slab FFT: a full
        n x n grid of processes works (n^2 = 64 ranks for n = 8)."""
        glob, out = _run((8, 8), lambda fft, pencil, comm: fft.forward(pencil))
        ref = np.fft.fftn(glob)
        assert len(out) == 64
        for r, kp in enumerate(out):
            assert kp.shape == (1, 1, N)

    def test_shape_validation(self):
        def work(fft, pencil, comm):
            with pytest.raises(ValueError):
                fft.forward(np.zeros((1, 1, 1), dtype=complex))
            return True

        _, out = _run((2, 2), work)
        assert all(out)


class TestRoundtrip:
    @pytest.mark.parametrize("grid", [(1, 1), (2, 2), (2, 4)])
    def test_inverse_of_forward(self, grid):
        def work(fft, pencil, comm):
            return fft.inverse(fft.forward(pencil))

        glob, out = _run(grid, work)
        for r, back in enumerate(out):
            i, j = r // grid[1], r % grid[1]
            ya = N * i // grid[0]
            yb = N * (i + 1) // grid[0]
            za = N * j // grid[1]
            zb = N * (j + 1) // grid[1]
            np.testing.assert_allclose(back, glob[:, ya:yb, za:zb], atol=1e-12)


class TestConvolve:
    @pytest.mark.parametrize("grid", [(2, 2), (4, 2)])
    def test_matches_serial_poisson(self, grid):
        split = S2ForceSplit(3.0 / N)
        greens = build_greens_function(N, split=split, deconvolve=2, rfft=False)

        def work(fft, pencil, comm):
            return fft, fft.convolve(pencil, fft.greens_slice(greens))

        glob, out = _run(grid, work)
        ref = np.real(np.fft.ifftn(np.fft.fftn(glob) * greens))
        for fft, phi in out:
            (xa, xb), (ya, yb), (za, zb) = fft.real_ranges()
            np.testing.assert_allclose(
                phi, ref[xa:xb, ya:yb, za:zb], atol=1e-11
            )


class TestValidation:
    def test_grid_must_match_comm(self):
        def fn(comm):
            PencilFFT(comm, N, (2, 2))

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)

    def test_grid_within_mesh(self):
        def fn(comm):
            PencilFFT(comm, 2, (4, 1))

        with pytest.raises(RuntimeError):
            run_spmd(4, fn)
