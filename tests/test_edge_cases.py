"""Edge-case and robustness tests across subsystems.

Covers paths the module-focused suites exercise thinly: error branches,
unusual-but-legal configurations, and cross-module corners.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PMConfig, SimulationConfig, TreeConfig, TreePMConfig
from repro.mpi.runtime import run_spmd


class TestTreePMCorners:
    def test_quadrupole_through_full_solver(self, clustered_particles):
        from repro.treepm.solver import TreePMSolver

        pos, mass = clustered_particles
        cfg = TreePMConfig(
            tree=TreeConfig(opening_angle=0.7, use_quadrupole=True, group_size=32),
            pm=PMConfig(mesh_size=16),
            softening=1e-3,
        )
        cfg_mono = TreePMConfig(
            tree=TreeConfig(opening_angle=0.7, use_quadrupole=False, group_size=32),
            pm=PMConfig(mesh_size=16),
            softening=1e-3,
        )
        quad = TreePMSolver(cfg).forces(pos, mass).total
        mono = TreePMSolver(cfg_mono).forces(pos, mass).total
        # both finite, same magnitude scale, but not identical
        assert np.all(np.isfinite(quad))
        assert not np.allclose(quad, mono)
        assert np.linalg.norm(quad) == pytest.approx(
            np.linalg.norm(mono), rel=0.1
        )

    def test_gaussian_split_potential(self, uniform_particles):
        from repro.treepm.solver import TreePMSolver

        pos, mass = uniform_particles
        cfg = TreePMConfig(
            pm=PMConfig(mesh_size=16), softening=1e-3, split="gaussian"
        )
        phi = TreePMSolver(cfg).potential(pos, mass)
        assert np.all(np.isfinite(phi))
        assert (mass * phi).sum() < 0  # bound-ish random distribution

    def test_rcut_property(self):
        from repro.treepm.solver import TreePMSolver

        cfg = TreePMConfig(pm=PMConfig(mesh_size=32), rcut_mesh_units=4.0,
                           softening=1e-4)
        assert TreePMSolver(cfg).rcut == pytest.approx(4.0 / 32)

    def test_targets_mask_length_validation(self, uniform_particles):
        from repro.tree.traversal import TreeSolver

        pos, mass = uniform_particles
        solver = TreeSolver(periodic=True)
        with pytest.raises(ValueError, match="targets_mask"):
            solver.forces(pos, mass, targets_mask=np.ones(3, dtype=bool))


class TestCommCorners:
    def test_allgather_numpy_arrays(self):
        def fn(comm):
            return comm.allgather(np.full(2, comm.rank, dtype=np.float64))

        out = run_spmd(3, fn)
        for got in out:
            for r, arr in enumerate(got):
                np.testing.assert_array_equal(arr, np.full(2, r))

    def test_reduce_max_array(self):
        def fn(comm):
            v = np.array([comm.rank, -comm.rank], dtype=np.float64)
            return comm.reduce(v, op="max", root=0)

        out = run_spmd(4, fn)
        np.testing.assert_array_equal(out[0], [3.0, 0.0])

    def test_recv_invalid_source(self):
        def fn(comm):
            comm.recv(source=5)

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)

    def test_alltoall_wrong_length(self):
        def fn(comm):
            comm.alltoall([1])  # needs comm.size entries

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)

    def test_split_key_stability(self):
        """Equal keys fall back to rank order (stable)."""

        def fn(comm):
            sub = comm.split(color=0, key=42)
            return sub.rank

        assert run_spmd(4, fn) == [0, 1, 2, 3]

    def test_bcast_large_array_integrity(self):
        rng = np.random.default_rng(0)
        data = rng.random(10000)

        def fn(comm):
            got = comm.bcast(data if comm.rank == 0 else None, root=0)
            return float(np.abs(got - data).max())

        assert all(v == 0.0 for v in run_spmd(5, fn))


class TestParallelSimCorners:
    def test_rank_can_run_out_of_particles(self):
        """A domain that ends up empty must not crash the pipeline."""
        from repro.config import DomainConfig
        from repro.sim.parallel import run_parallel_simulation

        rng = np.random.default_rng(8)
        # everything in one octant: three of four ranks go (nearly) empty
        pos = 0.25 * rng.random((64, 3))
        mom = np.zeros_like(pos)
        mass = np.full(64, 1.0 / 64)
        cfg = SimulationConfig(
            treepm=TreePMConfig(
                tree=TreeConfig(group_size=32),
                pm=PMConfig(mesh_size=16),
                softening=5e-3,
            ),
            domain=DomainConfig(divisions=(2, 2, 1), sample_rate=0.5),
        )
        p, m, w, sims, _ = run_parallel_simulation(
            cfg, pos, mom, mass, 0.0, 0.02, n_steps=1
        )
        assert len(p) == 64
        assert w.sum() == pytest.approx(1.0)

    def test_multi_step_run(self, rng):
        from repro.config import DomainConfig
        from repro.sim.parallel import run_parallel_simulation

        pos = rng.random((48, 3))
        cfg = SimulationConfig(
            treepm=TreePMConfig(
                tree=TreeConfig(group_size=32),
                pm=PMConfig(mesh_size=16),
                softening=5e-3,
            ),
            domain=DomainConfig(divisions=(2, 1, 1), sample_rate=0.5),
        )
        _, _, _, sims, _ = run_parallel_simulation(
            cfg, pos, np.zeros_like(pos), np.full(48, 1 / 48), 0.0, 0.06,
            n_steps=3,
        )
        assert all(s.steps_taken == 3 for s in sims)
        # 2 PP evaluations per step, so stats accumulated 6+1 bootstrap
        assert sims[0].stats.interactions > 0


class TestReportCorners:
    def test_single_column_no_footer(self):
        from repro.perf.model import PAPER_TABLE1
        from repro.perf.report import format_table1

        txt = format_table1({"only": PAPER_TABLE1[24576]})
        assert "Total (sec/step)" in txt
        assert "only" in txt

    def test_partial_columns(self):
        from repro.perf.report import format_table1

        txt = format_table1(
            {"a": {"PM/FFT": 1.0}, "b": {"PM/FFT": 2.0, "PP/force calculation": 3.0}}
        )
        assert "FFT" in txt
        assert "force calculation" in txt


class TestTimerCorners:
    def test_phase_records_on_exception(self):
        from repro.utils.timer import TimingLedger

        led = TimingLedger()
        with pytest.raises(RuntimeError):
            with led.phase("x"):
                raise RuntimeError("boom")
        assert led.get("x") >= 0.0
        assert "x" in led.as_dict()


class TestExchangeCorners:
    def test_decomp_size_mismatch(self):
        from repro.decomp.exchange import exchange_particles
        from repro.decomp.multisection import MultisectionDecomposition

        decomp = MultisectionDecomposition.uniform((2, 1, 1))

        def fn(comm):
            exchange_particles(comm, decomp, {"pos": np.zeros((1, 3))})

        with pytest.raises(RuntimeError, match="match"):
            run_spmd(1, fn)


class TestPowerSpectrumCorners:
    def test_mass_weighted_shot_noise(self, rng):
        """Unequal masses: the effective tracer count drops."""
        from repro.analysis.power import particle_power_spectrum

        pos = rng.random((2000, 3))
        m_eq = np.ones(2000)
        m_uneq = rng.random(2000) ** 4 + 1e-3
        _, p_eq, _ = particle_power_spectrum(pos, m_eq, n_mesh=8)
        _, p_uneq_raw, _ = particle_power_spectrum(
            pos, m_uneq, n_mesh=8, subtract_shot_noise=False
        )
        n_eff = m_uneq.sum() ** 2 / np.sum(m_uneq**2)
        assert n_eff < 2000  # genuinely unequal
        # raw unequal-mass power sits near its (larger) shot noise
        assert p_uneq_raw.mean() == pytest.approx(1.0 / n_eff, rel=0.5)

    def test_tsc_scheme_consistent(self, rng):
        from repro.analysis.power import particle_power_spectrum

        pos = rng.random((3000, 3))
        m = np.ones(3000)
        _, p_cic, _ = particle_power_spectrum(pos, m, n_mesh=8, scheme="cic")
        _, p_tsc, _ = particle_power_spectrum(pos, m, n_mesh=8, scheme="tsc")
        # both deconvolved: same answer within sampling noise
        np.testing.assert_allclose(p_cic, p_tsc, rtol=0.5, atol=2e-4)


class TestCliCorners:
    def test_log_spaced_zero_start_rejected(self):
        from repro.cli import run_from_config

        with pytest.raises(ValueError, match="log-spaced"):
            run_from_config(
                {"kind": "static", "start": 0.0, "end": 0.1, "log_spaced": True},
                log=lambda *a: None,
            )
