"""Per-stage native kernels: availability, parity, and gating.

Each compiled kernel must (a) match its numpy reference bitwise, (b)
honor the per-stage environment opt-outs on every call, and (c) stay
disabled for the process when its startup self-test fails.  All tests
fall back to skipping when no C toolchain is available — the numpy path
is then the only path, and it is covered by the rest of the suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh.assignment import assign_mass, interpolate_mesh
from repro.native import certify, meshops, traverse, treebuild, update
from repro.tree.morton import MORTON_BITS, morton_keys
from repro.tree.octree import Octree, build_nodes_numpy
from repro.tree.traversal import TraversalStats, TreeSolver, traverse_all_numpy
from repro.utils.periodic import wrap_positions


@pytest.fixture(scope="module")
def particles():
    rng = np.random.default_rng(31337)
    pos = np.mod(
        np.vstack(
            [0.5 + 0.05 * rng.standard_normal((300, 3)), rng.random((200, 3))]
        ),
        1.0,
    )
    mass = rng.random(len(pos)) + 0.5
    return pos, mass


# -- tree build ---------------------------------------------------------------


def test_tree_build_matches_numpy(particles):
    if not treebuild.available():
        pytest.skip("native tree-build kernel unavailable")
    pos, _ = particles
    origin = np.zeros(3)
    got = treebuild.morton_build(pos, origin, 1.0, MORTON_BITS)
    assert got is not None
    keys_sorted, perm = got
    ref_keys = morton_keys(pos, origin, 1.0, MORTON_BITS)
    ref_perm = np.argsort(ref_keys, kind="stable")
    assert np.array_equal(perm, ref_perm)
    assert np.array_equal(keys_sorted, ref_keys[ref_perm])

    root_center = origin + 0.5
    nodes = treebuild.build_nodes(keys_sorted, 8, MORTON_BITS, root_center, 0.5)
    assert nodes is not None
    ref = build_nodes_numpy(keys_sorted, len(pos), origin, 1.0, 8, MORTON_BITS)
    for got_a, ref_a in zip(nodes, ref):
        assert got_a.dtype == ref_a.dtype
        assert np.array_equal(got_a, ref_a)


def test_tree_build_declines_out_of_cube():
    if not treebuild.available():
        pytest.skip("native tree-build kernel unavailable")
    pos = np.array([[0.5, 0.5, 0.5], [1.5, 0.5, 0.5]])
    assert treebuild.morton_build(pos, np.zeros(3), 1.0, MORTON_BITS) is None


def test_octree_identical_under_opt_out(particles, monkeypatch):
    pos, mass = particles
    t_native = Octree(pos, mass, leaf_size=8)
    monkeypatch.setenv("REPRO_NO_NATIVE_TREE", "1")
    t_numpy = Octree(pos, mass, leaf_size=8)
    for attr in ("node_center", "node_half", "node_lo", "node_hi",
                 "node_is_leaf", "node_children", "node_com", "node_mass"):
        assert np.array_equal(getattr(t_native, attr), getattr(t_numpy, attr))
    assert t_native.group_nodes(32) == t_numpy.group_nodes(32)


# -- traversal ----------------------------------------------------------------


def test_traversal_plan_matches_numpy(particles):
    if not traverse.available():
        pytest.skip("native traversal kernel unavailable")
    pos, mass = particles
    tree = Octree(pos, mass, leaf_size=4)
    groups = np.asarray(sorted(tree.group_nodes(24), key=lambda g: tree.node_lo[g]))
    for periodic, rcut in [(True, None), (True, 0.2), (False, None)]:
        got = traverse.traverse_all(
            tree, groups, rcut, 0.6, periodic, 1.0, TraversalStats()
        )
        assert got is not None
        ref = traverse_all_numpy(
            tree, groups, rcut, 0.6, periodic, 1.0, TraversalStats()
        )
        for g, r in zip(got, ref):
            if r is None:
                assert g is None
            else:
                assert np.array_equal(g, r)


def test_forces_identical_under_traverse_opt_out(particles, monkeypatch):
    pos, mass = particles
    solver = TreeSolver(theta=0.5, leaf_size=8, group_size=32, periodic=True, box=1.0)
    a_native, _ = solver.forces(pos, mass)
    monkeypatch.setenv("REPRO_NO_NATIVE_TRAVERSE", "1")
    a_numpy, _ = TreeSolver(
        theta=0.5, leaf_size=8, group_size=32, periodic=True, box=1.0
    ).forces(pos, mass)
    assert np.array_equal(a_native, a_numpy)


# -- mesh ---------------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["ngp", "cic", "tsc"])
def test_mesh_identical_under_opt_out(particles, scheme, monkeypatch):
    pos, mass = particles
    m_native = assign_mass(pos, mass, 12, box=1.0, scheme=scheme)
    field = np.stack([m_native, 2.0 * m_native, -m_native], axis=-1)
    v_native = interpolate_mesh(field, pos, box=1.0, scheme=scheme)
    monkeypatch.setenv("REPRO_NO_NATIVE_MESH", "1")
    m_numpy = assign_mass(pos, mass, 12, box=1.0, scheme=scheme)
    v_numpy = interpolate_mesh(field, pos, box=1.0, scheme=scheme)
    assert np.array_equal(m_native, m_numpy)
    assert np.array_equal(v_native, v_numpy)


# -- update -------------------------------------------------------------------


def test_update_kernels_match_numpy():
    if not update.available():
        pytest.skip("native update kernel unavailable")
    rng = np.random.default_rng(99)
    pos = rng.random((128, 3))
    mom = 0.1 * rng.standard_normal((128, 3))
    acc = rng.standard_normal((128, 3))
    kc, dc, box = 0.21, 1.3, 1.0

    ref_mom = mom + acc * kc
    ref_pos = wrap_positions(pos + ref_mom * dc, box)
    p, m = pos.copy(), mom.copy()
    assert update.kick_drift_wrap(p, m, acc, kc, dc, box)
    assert np.array_equal(m, ref_mom)
    assert np.array_equal(p, ref_pos)

    m2 = mom.copy()
    assert update.kick(m2, acc, kc)
    assert np.array_equal(m2, ref_mom)

    p2 = pos.copy()
    assert update.drift_wrap(p2, mom, dc, box)
    assert np.array_equal(p2, wrap_positions(pos + mom * dc, box))


def test_update_opt_out_returns_false(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NATIVE_UPDATE", "1")
    mom = np.zeros((4, 3))
    assert not update.kick(mom, np.ones((4, 3)), 0.5)
    assert np.array_equal(mom, np.zeros((4, 3)))  # untouched on decline


def test_update_rejects_bad_arrays():
    if not update.available():
        pytest.skip("native update kernel unavailable")
    mom = np.zeros((4, 3), dtype=np.float32)  # wrong dtype
    assert not update.kick(mom, np.zeros((4, 3), dtype=np.float32), 0.5)
    assert not update.kick(np.zeros((4, 3)), np.zeros((3, 3)), 0.5)  # shape


# -- no-wrap certification ----------------------------------------------------


def _periodic_plan(pos, mass, rcut=3.0 / 16):
    from repro.pp.plan import InteractionPlan

    tree = Octree(pos, mass, leaf_size=4)
    groups = np.array(tree.group_nodes(24), dtype=np.int64)
    groups = groups[np.argsort(tree.node_lo[groups], kind="stable")]
    stats = TraversalStats()
    (part_ptr, part_idx, node_ptr, node_idx,
     part_shift, node_shift) = traverse_all_numpy(
        tree, groups, rcut, 0.5, True, 1.0, stats
    )
    plan = InteractionPlan(
        group_nodes=groups,
        group_lo=tree.node_lo[groups],
        group_hi=tree.node_hi[groups],
        part_ptr=part_ptr,
        part_idx=part_idx,
        node_ptr=node_ptr,
        node_idx=node_idx,
        part_shift=part_shift,
        node_shift=node_shift,
    )
    return tree, plan


def test_certify_matches_numpy(particles):
    from repro.tree.traversal import certify_no_wrap_numpy

    if not certify.available():
        pytest.skip("native certify kernel unavailable")
    pos, mass = particles
    for rcut in (None, 3.0 / 16):
        tree, plan = _periodic_plan(pos, mass, rcut)
        ref = certify_no_wrap_numpy(tree, plan, 1.0)
        got = certify.certify(tree, plan, 1.0)
        assert got is not None
        assert got.dtype == np.bool_
        assert np.array_equal(got, ref)


def test_certified_plans_identical_under_opt_out(particles, monkeypatch):
    if not certify.available():
        pytest.skip("native certify kernel unavailable")
    pos, mass = particles
    solver = TreeSolver(
        theta=0.5, leaf_size=4, group_size=24, periodic=True, box=1.0
    )
    plan_native = solver.build_plan(Octree(pos, mass, leaf_size=4))
    monkeypatch.setenv("REPRO_NO_NATIVE_CERTIFY", "1")
    plan_numpy = solver.build_plan(Octree(pos, mass, leaf_size=4))
    assert np.array_equal(plan_native.no_wrap, plan_numpy.no_wrap)


def test_certify_failed_self_test_falls_back(particles, monkeypatch):
    if not certify.available():
        pytest.skip("native certify kernel unavailable")
    monkeypatch.setattr(certify, "_verified", {})
    monkeypatch.setattr(certify, "_self_test", lambda lib: False)
    assert certify.get_lib() is None
    pos, mass = particles
    tree, plan = _periodic_plan(pos, mass)
    assert certify.certify(tree, plan, 1.0) is None


# -- self-test gating ---------------------------------------------------------


def test_failed_self_test_disables_kernel(monkeypatch):
    if not update.available():
        pytest.skip("native update kernel unavailable")
    monkeypatch.setattr(update, "_verified", {})
    monkeypatch.setattr(update, "_self_test", lambda lib: False)
    assert update.get_lib() is None
    assert not update.kick(np.zeros((2, 3)), np.ones((2, 3)), 1.0)


def test_erroring_self_test_disables_kernel(monkeypatch):
    if not meshops.available():
        pytest.skip("native mesh kernel unavailable")

    def boom(lib):
        raise RuntimeError("synthetic self-test crash")

    monkeypatch.setattr(meshops, "_verified", {})
    monkeypatch.setattr(meshops, "_self_test", boom)
    assert meshops.get_lib() is None


# -- threading ----------------------------------------------------------------


def test_plan_sweep_threads_bitwise(particles, monkeypatch):
    from repro.pp import native as pp_native

    if not pp_native.available():
        pytest.skip("native plan-sweep kernel unavailable")
    pos, mass = particles
    solver = lambda: TreeSolver(
        theta=0.5, leaf_size=8, group_size=32, periodic=True, box=1.0
    )
    a_serial, _ = solver().forces(pos, mass)
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "2")
    a_two, _ = solver().forces(pos, mass)
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "7")
    a_seven, _ = solver().forces(pos, mass)
    assert np.array_equal(a_serial, a_two)
    assert np.array_equal(a_serial, a_seven)
