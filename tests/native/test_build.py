"""The shared compile-on-demand loader: hash-keyed caching and gating.

The regression being pinned: compiled ``.so`` artifacts are keyed by a
hash of the C source plus the full compiler command line, so editing a
kernel source (or changing flags) can never silently load a stale
binary — the key changes and a fresh build happens.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess

import pytest

from repro.native import build as nb

HAVE_CC = shutil.which(os.environ.get("CC", "cc")) is not None

needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler")


def _probe_compiles() -> bool:
    try:
        subprocess.run(
            [os.environ.get("CC", "cc"), "--version"],
            check=True,
            capture_output=True,
            timeout=30,
        )
        return True
    except (OSError, subprocess.SubprocessError):
        return False


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(cache))
    return cache


def _write_src(path, body: str) -> None:
    path.write_text(f"double probe_value(void) {{ return {body}; }}\n")


def _value(lib) -> float:
    lib.probe_value.restype = ctypes.c_double
    lib.probe_value.argtypes = []
    return float(lib.probe_value())


def test_source_key_tracks_source_and_flags(tmp_path):
    src = tmp_path / "k.c"
    _write_src(src, "1.0")
    k1 = nb.source_key(str(src), nb.BASE_FLAGS)
    _write_src(src, "2.0")
    k2 = nb.source_key(str(src), nb.BASE_FLAGS)
    k3 = nb.source_key(str(src), nb.BASE_FLAGS + ("-DX",))
    assert k1 and k2 and k3
    assert k1 != k2 and k2 != k3
    assert nb.source_key(str(tmp_path / "missing.c"), nb.BASE_FLAGS) is None


@needs_cc
def test_editing_source_recompiles(fresh_cache, tmp_path):
    if not _probe_compiles():
        pytest.skip("compiler present but not functional")
    src = tmp_path / "kernel.c"
    _write_src(src, "41.0 + 1.0")
    lib1 = nb.load_library(str(src))
    assert lib1 is not None
    assert _value(lib1) == 42.0
    artifacts = sorted(fresh_cache.glob("kernel-*.so"))
    assert len(artifacts) == 1

    # touching the source must build a fresh artifact, never reuse the
    # stale one (this was the PR's caching bug class)
    _write_src(src, "6.0 * 7.0 + 1.0")
    lib2 = nb.load_library(str(src))
    assert lib2 is not None
    assert _value(lib2) == 43.0
    artifacts = sorted(fresh_cache.glob("kernel-*.so"))
    assert len(artifacts) == 2

    # different flags, same source: a third distinct artifact
    lib3 = nb.load_library(str(src), extra_flags=("-DPROBE",))
    assert lib3 is not None
    assert len(sorted(fresh_cache.glob("kernel-*.so"))) == 3


@needs_cc
def test_existing_artifact_is_reused(fresh_cache, tmp_path):
    if not _probe_compiles():
        pytest.skip("compiler present but not functional")
    src = tmp_path / "reuse.c"
    _write_src(src, "5.0")
    lib1 = nb.load_library(str(src))
    assert lib1 is not None
    so = sorted(fresh_cache.glob("reuse-*.so"))[0]
    mtime = so.stat().st_mtime_ns
    lib2 = nb.load_library(str(src))
    assert lib2 is lib1  # per-process memo
    assert so.stat().st_mtime_ns == mtime  # no rebuild on disk


def test_missing_compiler_falls_back(fresh_cache, tmp_path, monkeypatch):
    monkeypatch.setenv("CC", "repro-definitely-missing-cc")
    src = tmp_path / "nocc.c"
    _write_src(src, "1.0")
    assert nb.load_library(str(src)) is None


def test_stage_enabled_env_gates(monkeypatch):
    monkeypatch.delenv("REPRO_NO_NATIVE", raising=False)
    monkeypatch.delenv("REPRO_NO_NATIVE_MESH", raising=False)
    assert nb.stage_enabled("mesh")
    monkeypatch.setenv("REPRO_NO_NATIVE_MESH", "1")
    assert not nb.stage_enabled("mesh")
    assert nb.stage_enabled("tree")
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    assert not nb.stage_enabled("tree")


def test_native_threads_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_NATIVE_THREADS", raising=False)
    assert nb.native_threads() == 1
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "4")
    assert nb.native_threads() == 4
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "0")
    assert nb.native_threads() == 1
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "bogus")
    assert nb.native_threads() == 1
