"""Tests of the always-on particle-exchange conservation guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomp.exchange import exchange_particles
from repro.decomp.multisection import MultisectionDecomposition
from repro.mpi.runtime import run_spmd
from repro.validate import InvariantViolation

pytestmark = [pytest.mark.timeout(60)]


def _local_arrays(rank, n=24, seed=11):
    rng = np.random.default_rng(seed + rank)
    return {
        "pos": rng.random((n, 3)),
        "mom": 0.01 * rng.standard_normal((n, 3)),
        "mass": np.full(n, 1.0, dtype=np.float64),
    }


class _TamperComm:
    """Comm wrapper that lets a test damage alltoall results in flight."""

    def __init__(self, comm, mutate):
        self._comm = comm
        self._mutate = mutate

    def __getattr__(self, name):
        return getattr(self._comm, name)

    def alltoall(self, sends, **kwargs):
        received = self._comm.alltoall(sends, **kwargs)
        return self._mutate(received, self._comm.rank)


def _run_exchange(n_ranks, mutate=None, step=None):
    def spmd(comm):
        decomp = MultisectionDecomposition.uniform((n_ranks, 1, 1))
        arrays = _local_arrays(comm.rank)
        c = comm if mutate is None else _TamperComm(comm, mutate)
        out = exchange_particles(c, decomp, arrays, step=step)
        return {k: len(v) for k, v in out.items()}, len(arrays["pos"])

    return run_spmd(n_ranks, spmd)


class TestCleanExchange:
    def test_conserves_global_count(self):
        results = _run_exchange(2)
        n_after = sum(counts["pos"] for counts, _ in results)
        n_before = sum(n for _, n in results)
        assert n_after == n_before

    def test_all_arrays_share_length(self):
        for counts, _ in _run_exchange(2):
            assert counts["pos"] == counts["mom"] == counts["mass"]


class TestTamperedExchange:
    def _rank_violation(self, excinfo, rank=1):
        err = excinfo.value.rank_errors[rank]
        assert isinstance(err, InvariantViolation)
        return err

    def test_lost_rows_name_sender_and_receiver(self):
        def drop_rows(received, rank):
            if rank == 1:
                msg = dict(received[0])
                msg = {k: np.asarray(v)[:-1] for k, v in msg.items()}
                received = list(received)
                received[0] = msg
            return received

        with pytest.raises(RuntimeError) as ei:
            _run_exchange(2, mutate=drop_rows, step=7)
        v = self._rank_violation(ei)
        assert v.check == "particle_count"
        assert v.stage == "decomp/exchange"
        assert v.step == 7
        assert "rank 0" in str(v) and "rank 1" in str(v)
        assert v.stats["src"] == 0 and v.stats["dst"] == 1

    def test_dtype_disagreement_detected(self):
        def downcast(received, rank):
            if rank == 1:
                msg = dict(received[0])
                msg["mass"] = np.asarray(msg["mass"], dtype=np.float32)
                received = list(received)
                received[0] = msg
            return received

        with pytest.raises(RuntimeError) as ei:
            _run_exchange(2, mutate=downcast)
        v = self._rank_violation(ei)
        assert v.check == "exchange_payload"
        assert "float32" in str(v) and "rank 0" in str(v)

    def test_missing_key_detected(self):
        def strip_key(received, rank):
            if rank == 1:
                msg = {k: v for k, v in received[0].items() if k != "mom"}
                received = list(received)
                received[0] = msg
            return received

        with pytest.raises(RuntimeError) as ei:
            _run_exchange(2, mutate=strip_key)
        v = self._rank_violation(ei)
        assert v.check == "exchange_payload"
        assert "mom" in str(v)


class TestInputValidation:
    def test_requires_pos(self):
        def spmd(comm):
            decomp = MultisectionDecomposition.uniform((1, 1, 1))
            with pytest.raises(ValueError, match="pos"):
                exchange_particles(comm, decomp, {"mass": np.ones(3)})
            return True

        assert run_spmd(1, spmd) == [True]

    def test_rejects_length_mismatch(self):
        def spmd(comm):
            decomp = MultisectionDecomposition.uniform((1, 1, 1))
            arrays = {"pos": np.random.rand(4, 3), "mass": np.ones(3)}
            with pytest.raises(ValueError, match="mass"):
                exchange_particles(comm, decomp, arrays)
            return True

        assert run_spmd(1, spmd) == [True]
