"""Tests of the 3-D multisection decomposition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomp.multisection import MultisectionDecomposition, weighted_split


class TestWeightedSplit:
    def test_single_part(self):
        b = weighted_split(np.array([0.3]), np.array([1.0]), 1, 0.0, 1.0)
        np.testing.assert_array_equal(b, [0.0, 1.0])

    def test_uniform_samples_even_split(self):
        rng = np.random.default_rng(0)
        v = rng.random(100000)
        b = weighted_split(v, np.ones_like(v), 4, 0.0, 1.0)
        np.testing.assert_allclose(b, [0, 0.25, 0.5, 0.75, 1.0], atol=0.01)

    def test_weights_shift_boundaries(self):
        v = np.linspace(0.01, 0.99, 100)
        w = np.where(v < 0.5, 3.0, 1.0)  # left half 3x more expensive
        b = weighted_split(v, w, 2, 0.0, 1.0)
        assert b[1] < 0.45  # median of weight sits left of 0.5

    def test_no_samples_uniform_fallback(self):
        b = weighted_split(np.zeros(0), np.zeros(0), 4, 0.0, 2.0)
        np.testing.assert_allclose(b, [0, 0.5, 1.0, 1.5, 2.0])

    def test_degenerate_samples_still_monotone(self):
        v = np.full(10, 0.5)
        b = weighted_split(v, np.ones(10), 4, 0.0, 1.0)
        assert np.all(np.diff(b) > 0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            weighted_split(np.zeros(1), np.ones(1), 0, 0.0, 1.0)
        with pytest.raises(ValueError):
            weighted_split(np.zeros(1), np.ones(1), 2, 1.0, 0.0)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=200))
    @settings(max_examples=20)
    def test_property_monotone_and_bounded(self, m, n):
        rng = np.random.default_rng(n)
        v = rng.random(n)
        b = weighted_split(v, np.ones(n), m, 0.0, 1.0)
        assert b[0] == 0.0 and b[-1] == 1.0
        assert np.all(np.diff(b) > 0)


class TestUniformDecomposition:
    def test_domain_bounds(self):
        d = MultisectionDecomposition.uniform((2, 2, 2))
        lo, hi = d.domain_bounds(0)
        np.testing.assert_allclose(lo, [0, 0, 0])
        np.testing.assert_allclose(hi, [0.5, 0.5, 0.5])
        lo, hi = d.domain_bounds(7)
        np.testing.assert_allclose(lo, [0.5, 0.5, 0.5])
        np.testing.assert_allclose(hi, [1, 1, 1])

    def test_rank_cell_roundtrip(self):
        d = MultisectionDecomposition.uniform((2, 3, 4))
        for r in range(d.n_domains):
            assert d.rank_of_cell(*d.cell_of_rank(r)) == r

    def test_volumes_sum_to_box(self):
        d = MultisectionDecomposition.uniform((3, 2, 2))
        assert d.domain_volumes().sum() == pytest.approx(1.0)

    def test_owner_of_covers_all(self, rng):
        d = MultisectionDecomposition.uniform((2, 3, 2))
        pos = rng.random((500, 3))
        owners = d.owner_of(pos)
        assert owners.min() >= 0
        assert owners.max() < d.n_domains
        for r in range(d.n_domains):
            lo, hi = d.domain_bounds(r)
            sel = owners == r
            assert np.all((pos[sel] >= lo) & (pos[sel] < hi))

    def test_invalid_rank(self):
        d = MultisectionDecomposition.uniform((2, 2, 2))
        with pytest.raises(ValueError):
            d.cell_of_rank(8)


class TestFromSamples:
    def test_equal_counts_per_domain(self, rng):
        """Defining property: every domain holds ~equal sample counts."""
        samples = rng.random((8000, 3))
        # clustered: half the samples in a small corner blob
        samples[:4000] = 0.1 * rng.random((4000, 3))
        d = MultisectionDecomposition.from_samples(samples, (2, 2, 2))
        owners = d.owner_of(samples)
        counts = np.bincount(owners, minlength=8)
        assert counts.max() / counts.min() < 1.25

    def test_clustered_blob_gets_small_domains(self, rng):
        samples = np.vstack(
            [0.05 + 0.05 * rng.random((5000, 3)), rng.random((1000, 3))]
        )
        d = MultisectionDecomposition.from_samples(samples, (2, 2, 2))
        vols = d.domain_volumes()
        # the domain containing the blob (rank 0: low corner) is small
        assert vols[0] < 0.2 * vols.max()

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="increasing"):
            MultisectionDecomposition(
                np.array([0.0, 0.5, 0.4, 1.0]),
                np.tile(np.linspace(0, 1, 2 + 1), (3, 1)),
                np.tile(np.linspace(0, 1, 3), (3, 2, 1)),
            )
        with pytest.raises(ValueError, match="span"):
            MultisectionDecomposition(
                np.array([0.1, 1.0]),
                np.tile(np.linspace(0, 1, 3), (1, 1)),
                np.tile(np.linspace(0, 1, 3), (1, 2, 1)),
            )

    def test_flatten_roundtrip(self, rng):
        samples = rng.random((1000, 3))
        d = MultisectionDecomposition.from_samples(samples, (2, 3, 2))
        d2 = MultisectionDecomposition.unflatten(d.flatten(), (2, 3, 2))
        np.testing.assert_array_equal(d.x_bounds, d2.x_bounds)
        np.testing.assert_array_equal(d.y_bounds, d2.y_bounds)
        np.testing.assert_array_equal(d.z_bounds, d2.z_bounds)

    def test_fig3_style_2d_division(self, rng):
        """The paper's Fig. 3: an 8x8 2-D division adapting to
        clustered structure; every domain ends up with equal counts."""
        blob = 0.5 + 0.05 * rng.standard_normal((20000, 3))
        bg = rng.random((5000, 3))
        samples = np.clip(np.vstack([blob, bg]), 0.0, 0.999999)
        d = MultisectionDecomposition.from_samples(samples, (8, 8, 1))
        counts = np.bincount(d.owner_of(samples), minlength=64)
        assert counts.max() / max(counts.min(), 1) < 1.6
        # central domains (containing the blob) are far smaller
        vols = d.domain_volumes()
        assert vols.min() < 0.05 * vols.max()
