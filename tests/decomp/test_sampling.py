"""Tests of the sampling method, boundary smoothing and exchange."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomp.exchange import exchange_particles
from repro.decomp.multisection import MultisectionDecomposition
from repro.decomp.sampling import BoundaryHistory, SamplingDecomposer
from repro.mpi.runtime import run_spmd


class TestBoundaryHistory:
    def test_first_push_identity(self):
        h = BoundaryHistory(window=5)
        v = np.array([0.0, 0.3, 1.0])
        np.testing.assert_array_equal(h.push(v), v)

    def test_linear_weights(self):
        h = BoundaryHistory(window=5)
        h.push(np.array([0.0]))
        out = h.push(np.array([3.0]))
        # weights 1, 2 -> (0*1 + 3*2)/3 = 2
        assert out[0] == pytest.approx(2.0)

    def test_window_truncates(self):
        h = BoundaryHistory(window=2)
        h.push(np.array([100.0]))
        h.push(np.array([0.0]))
        out = h.push(np.array([0.0]))
        assert out[0] == pytest.approx(0.0)  # the 100 fell out

    def test_smoothing_damps_jumps(self):
        """Alternating boundary sets are damped toward their mean."""
        h = BoundaryHistory(window=5)
        vals = []
        for i in range(20):
            vals.append(h.push(np.array([0.4 if i % 2 else 0.6]))[0])
        # raw jump amplitude 0.2; smoothed amplitude far smaller
        late = np.array(vals[10:])
        assert late.max() - late.min() < 0.08

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            BoundaryHistory(window=0)


class TestSamplingDecomposer:
    def _run(self, n_ranks, divisions, positions_of_rank, costs_of_rank, steps=1,
             cost_balance=True, window=1):
        def fn(comm):
            dec = SamplingDecomposer(
                divisions,
                sample_rate=0.5,
                window=window,
                cost_balance=cost_balance,
                seed=7,
            )
            out = None
            for s in range(steps):
                out = dec.update(
                    comm, positions_of_rank(comm.rank), costs_of_rank(comm.rank)
                )
            return out

        return run_spmd(n_ranks, fn)

    def test_all_ranks_agree(self):
        rng = np.random.default_rng(0)
        parts = [rng.random((100, 3)) for _ in range(4)]
        out = self._run(4, (2, 2, 1), lambda r: parts[r], lambda r: 1.0)
        for d in out[1:]:
            np.testing.assert_array_equal(d.flatten(), out[0].flatten())

    def test_equal_cost_equalizes_counts(self):
        """With uniform costs, domains converge to equal counts even
        for a clustered distribution."""
        rng = np.random.default_rng(1)
        blob = np.clip(0.25 + 0.05 * rng.standard_normal((2000, 3)), 0, 0.999)
        bg = rng.random((500, 3))
        allp = np.vstack([blob, bg])
        uniform = MultisectionDecomposition.uniform((2, 2, 1))
        owners = uniform.owner_of(allp)
        parts = [allp[owners == r] for r in range(4)]
        out = self._run(
            4, (2, 2, 1), lambda r: parts[r], lambda r: 1.0, cost_balance=False
        )
        counts = np.bincount(out[0].owner_of(allp), minlength=4)
        assert counts.max() / counts.min() < 1.5

    def test_costly_rank_gets_smaller_domain(self):
        """Cost-proportional sampling: the expensive rank's region
        shrinks relative to count-balanced sampling."""
        rng = np.random.default_rng(2)
        parts = [rng.random((200, 3)) * [0.5, 1, 1] + [0.5 * (r // 2), 0, 0]
                 for r in range(4)]

        def costs(r):
            return 10.0 if r == 0 else 1.0

        balanced = self._run(4, (2, 2, 1), lambda r: parts[r], costs)[0]
        neutral = self._run(
            4, (2, 2, 1), lambda r: parts[r], costs, cost_balance=False
        )[0]
        assert balanced.domain_volumes()[0] < neutral.domain_volumes()[0]

    def test_smoothing_applied_over_steps(self):
        rng = np.random.default_rng(3)
        parts = [rng.random((300, 3)) for _ in range(2)]
        smooth = self._run(
            2, (2, 1, 1), lambda r: parts[r], lambda r: 1.0, steps=5, window=5
        )[0]
        # smoothed boundaries remain valid and within the box
        assert np.all(np.diff(smooth.x_bounds) > 0)

    def test_division_size_mismatch(self):
        with pytest.raises(RuntimeError, match="divisions"):
            self._run(4, (3, 1, 1), lambda r: np.zeros((1, 3)), lambda r: 1.0)

    def test_empty_rank_tolerated(self):
        rng = np.random.default_rng(4)

        def parts(r):
            return rng.random((100, 3)) if r else np.zeros((0, 3))

        out = self._run(2, (2, 1, 1), parts, lambda r: 1.0)
        assert out[0].n_domains == 2


class TestExchange:
    def test_particles_reach_their_owners(self):
        rng = np.random.default_rng(5)
        allpos = rng.random((400, 3))
        allvel = rng.standard_normal((400, 3))
        decomp = MultisectionDecomposition.uniform((2, 2, 1))

        def fn(comm):
            # initially particles are scattered arbitrarily: rank r
            # holds the r-th quarter regardless of position
            lo, hi = 100 * comm.rank, 100 * (comm.rank + 1)
            arrays = {
                "pos": allpos[lo:hi],
                "vel": allvel[lo:hi],
                "mass": np.full(100, 0.001),
            }
            return exchange_particles(comm, decomp, arrays)

        out = run_spmd(4, fn)
        total = sum(len(o["pos"]) for o in out)
        assert total == 400
        for r, o in enumerate(out):
            lo, hi = decomp.domain_bounds(r)
            assert np.all((o["pos"] >= lo) & (o["pos"] < hi))
            assert len(o["vel"]) == len(o["pos"]) == len(o["mass"])

    def test_velocity_follows_position(self):
        """Payload arrays stay aligned with their particles."""
        pos = np.array([[0.1, 0.5, 0.5], [0.9, 0.5, 0.5]])
        vel = np.array([[1.0, 0, 0], [2.0, 0, 0]])
        decomp = MultisectionDecomposition.uniform((2, 1, 1))

        def fn(comm):
            if comm.rank == 0:
                arrays = {"pos": pos, "vel": vel}
            else:
                arrays = {"pos": np.zeros((0, 3)), "vel": np.zeros((0, 3))}
            return exchange_particles(comm, decomp, arrays)

        out = run_spmd(2, fn)
        assert out[0]["vel"][0, 0] == 1.0
        assert out[1]["vel"][0, 0] == 2.0

    def test_validation(self):
        decomp = MultisectionDecomposition.uniform((1, 1, 1))

        def missing_pos(comm):
            exchange_particles(comm, decomp, {"vel": np.zeros((1, 3))})

        with pytest.raises(RuntimeError, match="pos"):
            run_spmd(1, missing_pos)

        def bad_len(comm):
            exchange_particles(
                comm, decomp, {"pos": np.zeros((2, 3)), "vel": np.zeros((1, 3))}
            )

        with pytest.raises(RuntimeError, match="mismatch"):
            run_spmd(1, bad_len)
