"""Smoke tests of the public API surface.

Every name a subpackage exports must import and be a real attribute —
the guard against __init__ drift as modules evolve.
"""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.forces",
    "repro.pp",
    "repro.tree",
    "repro.mesh",
    "repro.treepm",
    "repro.mpi",
    "repro.decomp",
    "repro.meshcomm",
    "repro.integrate",
    "repro.sim",
    "repro.cosmology",
    "repro.ic",
    "repro.analysis",
    "repro.perf",
    "repro.utils",
    "repro.validate",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), f"{package} lacks __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} missing"
        assert getattr(mod, name) is not None


@pytest.mark.parametrize("package", PACKAGES)
def test_package_docstrings(package):
    """Every package documents itself (deliverable e)."""
    mod = importlib.import_module(package)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 40, package


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_readme_quickstart_runs():
    """The README's quickstart snippet must actually work."""
    import numpy as np

    from repro import SimulationConfig
    from repro.sim.serial import SerialSimulation

    rng = np.random.default_rng(0)
    n = 64
    sim = SerialSimulation(
        SimulationConfig(
            treepm=__import__("repro").TreePMConfig(
                pm=__import__("repro").PMConfig(mesh_size=16),
                softening=5e-3,
            )
        ),
        rng.random((n, 3)),
        np.zeros((n, 3)),
        np.full(n, 1.0 / n),
    )
    sim.run(0.0, 0.02, n_steps=1)
    assert sim.steps_taken == 1
