"""Tests of the performance models against the paper's own numbers."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.perf.flops import efficiency, kernel_limit_flops, measured_performance
from repro.perf.kcomputer import K_FULL, K_PARTIAL, KComputerModel
from repro.perf.model import (
    PAPER_TABLE1,
    PAPER_TOTALS,
    PhaseRule,
    TableOneModel,
)
from repro.perf.report import format_table1


class TestKComputerModel:
    def test_linpack_peak(self):
        """16 Gflops/core, 128 Gflops/node, 10.6 Pflops full system."""
        m = K_FULL.machine
        assert m.peak_per_core == pytest.approx(16e9)
        assert m.peak_per_node == pytest.approx(128e9)
        assert m.peak_total == pytest.approx(10.6e15, rel=0.02)

    def test_kernel_limit_12_gflops(self):
        """17 FMA + 17 non-FMA per 2 interactions -> 12 Gflops/core."""
        assert K_FULL.kernel_peak_per_core == pytest.approx(12e9)

    def test_kernel_max_efficiency_75_percent(self):
        assert K_FULL.kernel_max_efficiency == pytest.approx(0.75)

    def test_kernel_sustained_11_65_gflops(self):
        """97% of the limit is the paper's measured 11.65 Gflops."""
        model = KComputerModel(kernel_efficiency=11.65 / 12.0)
        assert model.kernel_sustained_per_core == pytest.approx(11.65e9, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            KComputerModel(kernel_efficiency=0.0)


class TestHeadlineNumbers:
    """The paper's aggregate metrics must follow from its inputs."""

    @pytest.mark.parametrize(
        "p,model", [(24576, K_PARTIAL), (82944, K_FULL)]
    )
    def test_pflops_and_efficiency(self, p, model):
        tot = PAPER_TOTALS[p]
        perf = measured_performance(
            tot["interactions_per_step"], tot["total_seconds"]
        )
        assert perf / 1e15 == pytest.approx(tot["pflops"], rel=0.03)
        assert efficiency(perf, model.machine) == pytest.approx(
            tot["efficiency"], rel=0.03
        )

    def test_force_cycle_efficiency_71_percent(self):
        """"If we focus on the only force calculation cycle, it
        achieves 71% efficiency ... equivalent to 95% since the
        theoretical maximum efficiency is 75%."""
        perf = measured_performance(
            PAPER_TOTALS[24576]["interactions_per_step"],
            PAPER_TABLE1[24576]["PP/force calculation"],
        )
        eff = efficiency(perf, K_PARTIAL.machine)
        assert eff == pytest.approx(0.71, abs=0.01)
        assert eff / K_PARTIAL.kernel_max_efficiency == pytest.approx(0.95, abs=0.02)

    def test_full_system_speedup(self):
        """3.375x nodes gives 2.89x speed (sublinear because of the
        constant FFT): both in the paper."""
        speedup = PAPER_TOTALS[24576]["total_seconds"] / PAPER_TOTALS[82944][
            "total_seconds"
        ]
        assert speedup == pytest.approx(2.89, abs=0.02)

    def test_pp_kernel_seconds_projection(self):
        """Projecting 5.35e15 interactions through the sustained-kernel
        model gives a time close to (but below) the measured force row:
        the measured row includes non-kernel overhead."""
        t = K_PARTIAL.pp_kernel_seconds(5.35e15)
        measured = PAPER_TABLE1[24576]["PP/force calculation"]
        assert t < measured
        assert t == pytest.approx(measured, rel=0.08)


class TestTableOneModel:
    def test_cross_validation_24k_to_82k(self):
        """Calibrate at 24576 nodes, predict the full system: every row
        within 40%, the total within 10%."""
        model = TableOneModel()
        model.calibrate(PAPER_TABLE1[24576], 24576)
        pred = model.predict(82944)
        meas = PAPER_TABLE1[82944]
        for row, value in meas.items():
            assert pred[row] == pytest.approx(value, rel=0.4), row
        assert model.predict_total(82944) == pytest.approx(
            PAPER_TOTALS[82944]["total_seconds"], rel=0.1
        )

    def test_cross_validation_reverse(self):
        model = TableOneModel()
        model.calibrate(PAPER_TABLE1[82944], 82944)
        assert model.predict_total(24576) == pytest.approx(
            PAPER_TOTALS[24576]["total_seconds"], rel=0.15
        )

    def test_calibration_identity(self):
        """Predicting at the calibration point returns the inputs."""
        model = TableOneModel()
        model.calibrate(PAPER_TABLE1[24576], 24576)
        pred = model.predict(24576)
        for row, value in PAPER_TABLE1[24576].items():
            assert pred[row] == pytest.approx(value, rel=1e-12)

    def test_fft_row_constant(self):
        """The defining saturation: FFT time does not shrink with p."""
        model = TableOneModel()
        model.calibrate(PAPER_TABLE1[24576], 24576)
        assert model.predict(82944)["PM/FFT"] == pytest.approx(4.06)

    def test_section_totals(self):
        """PM and DD sub-rows sum to the paper's section totals; the PP
        section carries ~1.2 s of unlisted overhead (150.87 listed vs
        152.10 reported), as does the grand total."""
        secs = TableOneModel.section_totals(PAPER_TABLE1[24576])
        assert secs["PM"] == pytest.approx(9.28, abs=0.01)
        assert secs["PP"] == pytest.approx(150.87, abs=0.01)
        assert 150.0 < secs["PP"] < 152.10
        assert secs["Domain Decomposition"] == pytest.approx(6.28, abs=0.01)

    def test_errors(self):
        model = TableOneModel()
        with pytest.raises(RuntimeError):
            model.predict(10)
        with pytest.raises(ValueError, match="missing"):
            model.calibrate({"PM/FFT": 1.0}, 10)
        with pytest.raises(ValueError):
            model.calibrate(PAPER_TABLE1[24576], 0)

    def test_phase_rule_roundtrip(self):
        rule = PhaseRule("x", -0.5)
        c = rule.coefficient(2.0, 100)
        assert rule.predict(c, 100) == pytest.approx(2.0)
        assert rule.predict(c, 400) == pytest.approx(1.0)


class TestReport:
    def test_format_contains_rows_and_totals(self):
        txt = format_table1(
            {"paper 24576": PAPER_TABLE1[24576], "paper 82944": PAPER_TABLE1[82944]},
            footer={
                "paper 24576": {"Pflops": 1.53},
                "paper 82944": {"Pflops": 4.45},
            },
        )
        assert "force calculation" in txt
        assert "PM (sec/step)" in txt
        assert "Total (sec/step)" in txt
        assert "122.18" in txt  # the dominant PP force row
        assert "4.17" in txt  # the saturated FFT row at 82944
        assert "Pflops" in txt
