"""Tests of the mesh-exchange congestion model (paper section II-B)."""

from __future__ import annotations

import pytest

from repro.perf.relaymodel import PAPER_RELAY_CASE, MeshExchangeModel


@pytest.fixture(scope="module")
def model():
    return MeshExchangeModel.calibrated_to_paper()


class TestCalibration:
    def test_direct_times_reproduced_exactly(self, model):
        """Calibration identities."""
        assert model.forward_seconds(1) == pytest.approx(
            PAPER_RELAY_CASE["direct"]["forward"]
        )
        assert model.backward_seconds(1) == pytest.approx(
            PAPER_RELAY_CASE["direct"]["backward"]
        )

    def test_sender_count_order_of_magnitude(self, model):
        """The paper: an FFT process receives from ~p^(2/3)-scale
        counts of processes (hundreds to thousands at 12288 nodes)."""
        s = model.senders_per_slab(1)
        assert 300 < s < 3000


class TestRelayPredictions:
    def test_forward_prediction(self, model):
        """Predicted relay forward ~3 s (paper: ~3 s; x3.3 speedup)."""
        pred = model.forward_seconds(3)
        assert pred == pytest.approx(PAPER_RELAY_CASE["relay3"]["forward"], rel=0.25)

    def test_backward_prediction(self, model):
        """Predicted relay backward ~0.3-0.45 s (paper: ~0.3 s; x10)."""
        pred = model.backward_seconds(3)
        assert pred == pytest.approx(
            PAPER_RELAY_CASE["relay3"]["backward"], rel=0.6
        )
        assert pred < 0.5

    def test_overall_speedup_factor(self, model):
        """"We achieve speed up more than a factor of four for the
        communication" — total conversion time improvement."""
        direct = model.forward_seconds(1) + model.backward_seconds(1)
        relay = model.forward_seconds(3) + model.backward_seconds(3)
        assert direct / relay > 3.0

    def test_more_groups_help_until_crossgroup_costs(self, model):
        """Group sweep: conversion time decreases then flattens."""
        times = [model.forward_seconds(g) for g in (1, 2, 3, 4, 6)]
        assert times[0] > times[1] > times[2]

    def test_fft_becomes_bottleneck_after_optimization(self, model):
        """Paper: "FFT became a bottleneck after the optimization of
        these communication parts" (FFT ~4 s > relay conversions)."""
        relay_total = model.forward_seconds(3) + model.backward_seconds(3)
        assert PAPER_RELAY_CASE["fft"] > relay_total / 2
        assert PAPER_RELAY_CASE["fft"] > model.backward_seconds(3)


class TestValidation:
    def test_divisions_must_match(self):
        with pytest.raises(ValueError):
            MeshExchangeModel(p=10, divisions=(2, 2, 2), n_mesh=64, n_fft=8)

    def test_nfft_limit(self):
        with pytest.raises(ValueError):
            MeshExchangeModel(p=8, divisions=(2, 2, 2), n_mesh=8, n_fft=16)
