"""Tests of the memory footprint model against the paper's claims."""

from __future__ import annotations

import pytest

from repro.perf.memory import MemoryModel


class TestMemoryModel:
    def test_paper_200tb_claim(self):
        """"The total amount of memory required is ~200TB" for the
        10240^3-particle run."""
        m = MemoryModel()
        total_tb = m.total_bytes() / 1e12
        assert total_tb == pytest.approx(200.0, rel=0.15)

    def test_fits_on_24576_nodes(self):
        """The run lived on 24576 nodes with 16 GB each."""
        m = MemoryModel(nodes=24576)
        assert m.per_node_bytes() < 16.0e9
        # but with meaningful utilization (> 40%)
        assert m.per_node_bytes() > 0.4 * 16.0e9

    def test_full_system_headroom(self):
        """On the full system (1.3 PB total) the run is comfortable."""
        m = MemoryModel(nodes=82944)
        assert m.total_bytes() < 1.3e15
        assert m.per_node_bytes() < 16.0e9 / 4

    def test_breakdown_sums_to_total(self):
        m = MemoryModel()
        b = m.breakdown()
        parts = sum(v for k, v in b.items() if k != "total")
        assert parts == pytest.approx(b["total"], rel=1e-12)

    def test_particles_dominate(self):
        """Particle state dominates the budget — the property that
        makes trillion-body the memory-limited frontier."""
        b = MemoryModel().breakdown()
        assert b["particles"] > 0.4 * b["total"]
        assert b["meshes"] < 0.05 * b["total"]

    def test_mesh_share_grows_with_mesh(self):
        small = MemoryModel(n_mesh=4096).breakdown()["meshes"]
        big = MemoryModel(n_mesh=8192).breakdown()["meshes"]
        assert big == pytest.approx(8 * small, rel=1e-12)
