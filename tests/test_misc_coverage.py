"""Final coverage bundle: behaviors not exercised elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.runtime import MPIRuntime, run_spmd


class TestOctreeStats:
    def test_uniform_tree_statistics(self, rng):
        from repro.tree.octree import Octree

        pos = rng.random((512, 3))
        tree = Octree(pos, np.ones(512), leaf_size=8)
        s = tree.stats()
        assert s["n_leaves"] > 0
        assert s["n_nodes"] == s["n_leaves"] + (~tree.node_is_leaf).sum()
        assert 1 <= s["max_leaf_occupancy"] <= 8
        assert 1.0 < s["mean_branching"] <= 8.0
        # the rule of thumb the memory model uses: ~0.3-0.6 nodes/particle
        assert 0.1 < s["nodes_per_particle"] < 1.5

    def test_clustered_deeper_than_uniform(self, rng):
        from repro.tree.octree import Octree

        uniform = rng.random((1000, 3))
        clustered = np.mod(0.5 + 0.01 * rng.standard_normal((1000, 3)), 1.0)
        s_u = Octree(uniform, np.ones(1000), leaf_size=8).stats()
        s_c = Octree(clustered, np.ones(1000), leaf_size=8).stats()
        assert s_c["max_depth"] > s_u["max_depth"]


class TestRuntimeBehavior:
    def test_results_ordered_by_rank(self):
        out = run_spmd(5, lambda comm: comm.rank * 11)
        assert out == [0, 11, 22, 33, 44]

    def test_args_kwargs_passthrough(self):
        def fn(comm, a, b=0):
            return a + b + comm.rank

        assert MPIRuntime(2).run(fn, 5, b=7) == [12, 13]


class TestInterlacedPotential:
    def test_potential_at_ignores_interlace_by_design(self, rng):
        """potential_at uses the plain pipeline; forces() uses the
        interlaced density — both stay finite and consistent."""
        from repro.mesh.poisson import PMSolver

        solver = PMSolver(16, interlace=True)
        pos = rng.random((20, 3))
        mass = np.ones(20)
        phi = solver.potential_at(pos, mass)
        acc = solver.forces(pos, mass)
        assert np.all(np.isfinite(phi))
        assert np.all(np.isfinite(acc))


class TestDegenerateTrees:
    def test_open_boundary_coincident_points(self):
        from repro.tree.traversal import tree_forces

        pos = np.tile([[0.5, 0.5, 0.5]], (10, 1))
        acc, stats = tree_forces(pos, np.ones(10), eps=0.01, periodic=False)
        np.testing.assert_array_equal(acc, 0.0)

    def test_open_boundary_collinear_points(self):
        from repro.tree.traversal import tree_forces

        pos = np.zeros((8, 3))
        pos[:, 0] = np.linspace(0.0, 1.0, 8)
        acc, _ = tree_forces(pos, np.ones(8), theta=0.3, eps=1e-3,
                             periodic=False)
        assert np.all(np.isfinite(acc))
        # symmetric chain: end particles pulled inward
        assert acc[0, 0] > 0 and acc[-1, 0] < 0


class TestFofCorners:
    def test_single_particle_catalog(self):
        from repro.analysis.fof import halo_catalog

        halos = halo_catalog(
            np.array([[0.5, 0.5, 0.5]]), np.array([1.0]), 0.1, min_members=1
        )
        assert len(halos) == 1
        assert halos[0].n_particles == 1


class TestRelayModelSummary:
    def test_summary_keys(self):
        from repro.perf.relaymodel import MeshExchangeModel

        m = MeshExchangeModel.calibrated_to_paper()
        s = m.summary(2)
        assert set(s) == {
            "forward_seconds",
            "backward_seconds",
            "senders_per_slab",
            "sends_per_holder",
        }
        assert all(v > 0 for v in s.values())


class TestCliStatic:
    def test_static_snapshots(self, tmp_path):
        from repro.cli import run_from_config
        from repro.sim.io import load_snapshot

        summary = run_from_config(
            {
                "kind": "static",
                "n_particles": 32,
                "mesh_size": 16,
                "end": 0.04,
                "n_steps": 2,
                "snapshots": [0.02, 0.04],
                "output_dir": str(tmp_path),
            },
            log=lambda *a: None,
        )
        assert len(summary["snapshots"]) == 2
        _, _, _, hdr = load_snapshot(summary["snapshots"][0])
        assert not hdr.cosmological
        assert hdr.time == pytest.approx(0.02)


class TestMortonEdge:
    def test_bits_parameter_coarsens_keys(self):
        from repro.tree.morton import morton_keys

        pos = np.array([[0.1, 0.2, 0.3], [0.100001, 0.2, 0.3]])
        fine = morton_keys(pos, bits=21)
        coarse = morton_keys(pos, bits=4)
        assert fine[0] != fine[1]
        assert coarse[0] == coarse[1]
